package client

import (
	"errors"
	"sync"
	"time"
)

// Client is a concurrency-safe connection pool over one server address.
// Every call checks a connection out (dialing a new one when the pool is
// empty and the cap allows), runs the operation, and returns it, so
// goroutines fan out over independent connections without coordination.
type Client struct {
	addr        string
	dialTimeout time.Duration
	maxIdle     int

	mu     sync.Mutex
	free   []*Conn
	closed bool
}

// ClientOption configures Dial.
type ClientOption func(*Client)

// WithDialTimeout bounds each connection attempt (default: none).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.dialTimeout = d }
}

// WithMaxIdle caps how many idle connections the pool retains (default
// 16); checkouts beyond the cap still dial, the surplus is just closed on
// return instead of pooled.
func WithMaxIdle(n int) ClientOption {
	return func(c *Client) { c.maxIdle = n }
}

// Dial creates a pooled client and eagerly dials one connection so a bad
// address fails here rather than on the first operation.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	cl := &Client{addr: addr, maxIdle: 16}
	for _, opt := range opts {
		opt(cl)
	}
	c, err := cl.checkout()
	if err != nil {
		return nil, err
	}
	cl.checkin(c)
	return cl, nil
}

// ErrClientClosed is returned by operations on a closed Client.
var ErrClientClosed = errors.New("client: closed")

func (cl *Client) checkout() (*Conn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(cl.free); n > 0 {
		c := cl.free[n-1]
		cl.free = cl.free[:n-1]
		cl.mu.Unlock()
		return c, nil
	}
	cl.mu.Unlock()
	return DialConnTimeout(cl.addr, cl.dialTimeout)
}

func (cl *Client) checkin(c *Conn) {
	if c.Err() != nil {
		c.Close()
		return
	}
	cl.mu.Lock()
	if cl.closed || len(cl.free) >= cl.maxIdle {
		cl.mu.Unlock()
		c.Close()
		return
	}
	cl.free = append(cl.free, c)
	cl.mu.Unlock()
}

// Do checks a connection out and hands it to fn — the escape hatch for
// pipelines and batch sequences that want connection affinity. The
// connection returns to the pool afterwards unless fn broke it.
func (cl *Client) Do(fn func(*Conn) error) error {
	c, err := cl.checkout()
	if err != nil {
		return err
	}
	defer cl.checkin(c)
	return fn(c)
}

// Get looks up key on a pooled connection.
func (cl *Client) Get(key uint64) (value uint64, found bool, err error) {
	err = cl.Do(func(c *Conn) error {
		value, found, err = c.Get(key)
		return err
	})
	return value, found, err
}

// Put upserts (key, value) on a pooled connection.
func (cl *Client) Put(key, value uint64) error {
	return cl.Do(func(c *Conn) error { return c.Put(key, value) })
}

// Del removes key on a pooled connection.
func (cl *Client) Del(key uint64) (found bool, err error) {
	err = cl.Do(func(c *Conn) error {
		found, err = c.Del(key)
		return err
	})
	return found, err
}

// GetBatch looks up every key in one round trip on a pooled connection.
func (cl *Client) GetBatch(keys []uint64, out []uint64) (oks []bool, err error) {
	err = cl.Do(func(c *Conn) error {
		oks, err = c.GetBatch(keys, out)
		return err
	})
	return oks, err
}

// PutBatch upserts every pair in one round trip on a pooled connection.
func (cl *Client) PutBatch(keys, values []uint64) error {
	return cl.Do(func(c *Conn) error { return c.PutBatch(keys, values) })
}

// DelBatch removes every key in one round trip on a pooled connection.
func (cl *Client) DelBatch(keys []uint64) (oks []bool, err error) {
	err = cl.Do(func(c *Conn) error {
		oks, err = c.DelBatch(keys)
		return err
	})
	return oks, err
}

// Stats fetches server and store statistics on a pooled connection.
func (cl *Client) Stats() (st Stats, err error) {
	err = cl.Do(func(c *Conn) error {
		st, err = c.Stats()
		return err
	})
	return st, err
}

// Close closes every pooled connection; in-flight checkouts close on
// return.
func (cl *Client) Close() error {
	cl.mu.Lock()
	free := cl.free
	cl.free = nil
	cl.closed = true
	cl.mu.Unlock()
	for _, c := range free {
		c.Close()
	}
	return nil
}

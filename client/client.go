// Package client is the Go client of the network KV service (package
// server): a connection pool over the length-prefixed binary protocol of
// internal/wire, with single-op round trips, native batch calls, and an
// explicit Pipeline for overlapping many requests on one connection.
//
// Client is the concurrency-safe entry point: each call checks a
// connection out of the pool and returns it afterwards, so independent
// goroutines fan out over independent connections. Conn and Pipeline are
// single-goroutine objects — the load generator (cmd/ehload) drives one
// Conn per worker.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"vmshortcut/internal/wire"
)

// samplerSeq decorrelates the sampler seeds of connections opened within
// the same clock tick (ehload opens its whole fleet at once).
var samplerSeq atomic.Uint64

// Stats is the reply of the STATS request: serving-layer counters plus
// the backing store's uniform Stats snapshot.
type Stats = wire.StatsReply

// Conn is one client connection. It is not safe for concurrent use; use
// Client for pooled concurrency, or one Conn per goroutine.
type Conn struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	readBuf []byte
	reqBuf  []byte
	err     error // first transport/protocol error; the Conn is then dead

	// Trace sampling (SetSampling). When the per-write coin flip fires,
	// writeAll prefixes the outgoing frames with one OpTraceCtx envelope,
	// asking the server to record the next request's spans in its flight
	// recorder. sampleThresh is the fire probability scaled to 2^53
	// (0 = sampling off, the default — the wire bytes are then identical
	// to a client predating tracing).
	sampleThresh uint64
	prng         uint64
	lastTraceID  uint64
	traceBuf     []byte
}

// DialConn opens one connection to a server.
func DialConn(addr string) (*Conn, error) {
	return DialConnTimeout(addr, 0)
}

// DialConnTimeout opens one connection, failing after timeout (0 = no
// timeout).
func DialConnTimeout(addr string, timeout time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Frames are small; latency matters more than segment fill.
		tc.SetNoDelay(true)
	}
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}, nil
}

// DialConnRetry dials until the server accepts or the timeout elapses,
// backing off briefly between attempts. It is the "wait for the server to
// come up" helper: a durable server recovers its keyspace before
// listening, so the first successful dial implies recovery has finished —
// cmd/ehload's restart check and scripts banking on that use this instead
// of sleeping.
func DialConnRetry(addr string, timeout time.Duration) (*Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := DialConnTimeout(addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("client: %s not up after %v: %w", addr, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// SetSampling sets this connection's trace-sampling probability in
// [0, 1]. While non-zero, each write may be prefixed by a trace-context
// envelope (wire.OpTraceCtx) that the server attaches to the following
// request frame; the server must understand the envelope, so only enable
// sampling against servers of at least this protocol revision — an old
// server fails the connection with an unknown-opcode error. 0 (the
// default) restores the envelope-free byte stream.
func (c *Conn) SetSampling(rate float64) {
	if rate <= 0 {
		c.sampleThresh = 0
		return
	}
	if rate > 1 {
		rate = 1
	}
	c.sampleThresh = uint64(rate * (1 << 53))
	if c.prng == 0 {
		// Seed once per Conn; splitmix-style scramble so connections
		// opened in the same nanosecond still diverge.
		seed := uint64(time.Now().UnixNano()) + samplerSeq.Add(1)*0x9e3779b97f4a7c15
		seed ^= seed >> 33
		seed *= 0xff51afd7ed558ccd
		seed ^= seed >> 33
		if seed == 0 {
			seed = 1
		}
		c.prng = seed
	}
}

// LastTraceID returns the trace ID of the most recent sampled write on
// this connection (0 = none yet). Load generators log it so an operator
// can look a specific slow run up at the server's /tracez.
func (c *Conn) LastTraceID() uint64 { return c.lastTraceID }

// rand64 is a xorshift64 step over the Conn's sampler state.
func (c *Conn) rand64() uint64 {
	x := c.prng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.prng = x
	return x
}

// Close closes the connection.
func (c *Conn) Close() error { return c.c.Close() }

// Err returns the sticky error that killed the connection, if any.
func (c *Conn) Err() error { return c.err }

func (c *Conn) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// writeAll sends the request buffer and flushes. With sampling enabled
// and the coin flip firing, the frames are prefixed by one trace-context
// envelope, which the server attaches to the first frame that follows —
// for a pipelined segment that frame seeds the coalesced batch, so the
// whole batch is traced.
func (c *Conn) writeAll(frames []byte) error {
	if c.err != nil {
		return c.err
	}
	if c.sampleThresh != 0 && c.rand64()>>11 < c.sampleThresh {
		id := c.rand64()
		if id == 0 {
			id = 1
		}
		c.lastTraceID = id
		c.traceBuf = wire.AppendTraceCtx(c.traceBuf[:0], id, wire.TraceFlagSampled)
		if _, err := c.bw.Write(c.traceBuf); err != nil {
			return c.fail(err)
		}
	}
	if _, err := c.bw.Write(frames); err != nil {
		return c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	return nil
}

// readResp reads one response frame. The payload is valid until the next
// read on this Conn.
func (c *Conn) readResp() (byte, []byte, error) {
	if c.err != nil {
		return 0, nil, c.err
	}
	tag, payload, buf, err := wire.ReadFrame(c.br, c.readBuf)
	c.readBuf = buf
	if err != nil {
		return 0, nil, c.fail(err)
	}
	return tag, payload, nil
}

// remoteErr converts a StatusErr payload into an error. Store-level
// errors arrive this way with the stream still aligned, so they do not
// kill the Conn.
func remoteErr(payload []byte) error {
	return fmt.Errorf("client: server error: %s", payload)
}

// ErrReadOnly reports a mutation sent to a replica: the server applies
// writes only from its primary until it is promoted. The caller should
// retry against the primary (or promote this server).
var ErrReadOnly = errors.New("client: server is a read-only replica")

// ErrStale reports a read rejected by a replica that has not heard from
// its primary within its staleness bound: the data it would serve may be
// arbitrarily far behind.
var ErrStale = errors.New("client: replica is stale beyond its staleness bound")

// refusalErr maps the replica refusal statuses onto their sentinel
// errors (nil for any other tag). Like StatusErr these arrive with the
// stream aligned and do not kill the Conn.
func refusalErr(tag byte) error {
	switch tag {
	case wire.StatusReadOnly:
		return ErrReadOnly
	case wire.StatusStale:
		return ErrStale
	}
	return nil
}

// Get looks up key.
func (c *Conn) Get(key uint64) (value uint64, found bool, err error) {
	c.reqBuf = wire.AppendKey(c.reqBuf[:0], wire.OpGet, key)
	if err := c.writeAll(c.reqBuf); err != nil {
		return 0, false, err
	}
	tag, payload, err := c.readResp()
	if err != nil {
		return 0, false, err
	}
	switch tag {
	case wire.StatusOK:
		if len(payload) < 8 {
			return 0, false, c.fail(fmt.Errorf("client: GET response payload %d bytes, want 8", len(payload)))
		}
		return wire.Uint64(payload, 0), true, nil
	case wire.StatusNotFound:
		return 0, false, nil
	case wire.StatusErr:
		return 0, false, remoteErr(payload)
	case wire.StatusReadOnly, wire.StatusStale:
		return 0, false, refusalErr(tag)
	}
	return 0, false, c.fail(fmt.Errorf("client: unexpected status 0x%02x", tag))
}

// Put upserts (key, value).
func (c *Conn) Put(key, value uint64) error {
	c.reqBuf = wire.AppendPut(c.reqBuf[:0], key, value)
	if err := c.writeAll(c.reqBuf); err != nil {
		return err
	}
	return c.readAck()
}

// Del removes key, reporting whether it was present.
func (c *Conn) Del(key uint64) (found bool, err error) {
	c.reqBuf = wire.AppendKey(c.reqBuf[:0], wire.OpDel, key)
	if err := c.writeAll(c.reqBuf); err != nil {
		return false, err
	}
	tag, payload, err := c.readResp()
	if err != nil {
		return false, err
	}
	switch tag {
	case wire.StatusOK:
		return true, nil
	case wire.StatusNotFound:
		return false, nil
	case wire.StatusErr:
		return false, remoteErr(payload)
	case wire.StatusReadOnly, wire.StatusStale:
		return false, refusalErr(tag)
	}
	return false, c.fail(fmt.Errorf("client: unexpected status 0x%02x", tag))
}

// readAck consumes an empty OK / error response.
func (c *Conn) readAck() error {
	tag, payload, err := c.readResp()
	if err != nil {
		return err
	}
	switch tag {
	case wire.StatusOK:
		return nil
	case wire.StatusErr:
		return remoteErr(payload)
	case wire.StatusReadOnly, wire.StatusStale:
		return refusalErr(tag)
	}
	return c.fail(fmt.Errorf("client: unexpected status 0x%02x", tag))
}

// errBatchTooLarge reports a batch the server's frame bound would
// reject; failing client-side keeps the connection alive and the error
// actionable.
func errBatchTooLarge(n int) error {
	return fmt.Errorf("client: batch of %d elements exceeds wire.MaxBatch (%d); split it", n, wire.MaxBatch)
}

// GetBatch looks up every key in one round trip (one OpGetBatch frame,
// one LookupBatch on the server). Values land in out, which must have
// length at least len(keys); the returned slice is per-key presence.
// Batches beyond wire.MaxBatch fail without touching the connection.
func (c *Conn) GetBatch(keys []uint64, out []uint64) ([]bool, error) {
	if len(keys) > wire.MaxBatch {
		return nil, errBatchTooLarge(len(keys))
	}
	c.reqBuf = wire.AppendKeyBatch(c.reqBuf[:0], wire.OpGetBatch, keys)
	if err := c.writeAll(c.reqBuf); err != nil {
		return nil, err
	}
	tag, payload, err := c.readResp()
	if err != nil {
		return nil, err
	}
	switch tag {
	case wire.StatusOK:
		return decodeFoundValues(c, payload, len(keys), out)
	case wire.StatusErr:
		return nil, remoteErr(payload)
	case wire.StatusReadOnly, wire.StatusStale:
		return nil, refusalErr(tag)
	}
	return nil, c.fail(fmt.Errorf("client: unexpected status 0x%02x", tag))
}

// PutBatch upserts every pair in one round trip; len(keys) must equal
// len(values).
func (c *Conn) PutBatch(keys, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("client: PutBatch: %d keys but %d values", len(keys), len(values))
	}
	if len(keys) > wire.MaxBatch {
		return errBatchTooLarge(len(keys))
	}
	c.reqBuf = wire.AppendPutBatch(c.reqBuf[:0], keys, values)
	if err := c.writeAll(c.reqBuf); err != nil {
		return err
	}
	return c.readAck()
}

// DelBatch removes every key in one round trip, returning per-key
// presence. Batches beyond wire.MaxBatch fail without touching the
// connection.
func (c *Conn) DelBatch(keys []uint64) ([]bool, error) {
	if len(keys) > wire.MaxBatch {
		return nil, errBatchTooLarge(len(keys))
	}
	c.reqBuf = wire.AppendKeyBatch(c.reqBuf[:0], wire.OpDelBatch, keys)
	if err := c.writeAll(c.reqBuf); err != nil {
		return nil, err
	}
	tag, payload, err := c.readResp()
	if err != nil {
		return nil, err
	}
	switch tag {
	case wire.StatusOK:
		return decodeFound(c, payload, len(keys))
	case wire.StatusErr:
		return nil, remoteErr(payload)
	case wire.StatusReadOnly, wire.StatusStale:
		return nil, refusalErr(tag)
	}
	return nil, c.fail(fmt.Errorf("client: unexpected status 0x%02x", tag))
}

// Promote asks a replica server to become the primary: it detaches from
// its old primary and starts accepting writes. Promoting a server that is
// already a primary fails with a server error.
func (c *Conn) Promote() error {
	c.reqBuf = wire.AppendEmpty(c.reqBuf[:0], wire.OpPromote)
	if err := c.writeAll(c.reqBuf); err != nil {
		return err
	}
	return c.readAck()
}

// Hijack hands over the connection's transport and its buffered
// reader/writer, leaving the Conn dead (every later call fails). The
// repl package uses it to turn a dialed connection — DialConnRetry's
// wait-for-recovery semantics included — into a replication stream after
// sending the REPLSYNC handshake. No request may be in flight.
func (c *Conn) Hijack() (net.Conn, *bufio.Reader, *bufio.Writer) {
	c.err = errors.New("client: connection hijacked")
	return c.c, c.br, c.bw
}

// Stats fetches the server's counters and the store's Stats snapshot.
func (c *Conn) Stats() (Stats, error) {
	c.reqBuf = wire.AppendEmpty(c.reqBuf[:0], wire.OpStats)
	if err := c.writeAll(c.reqBuf); err != nil {
		return Stats{}, err
	}
	tag, payload, err := c.readResp()
	if err != nil {
		return Stats{}, err
	}
	switch tag {
	case wire.StatusErr:
		return Stats{}, remoteErr(payload)
	case wire.StatusOK:
		var st Stats
		if err := json.Unmarshal(payload, &st); err != nil {
			return Stats{}, c.fail(fmt.Errorf("client: decoding stats: %w", err))
		}
		return st, nil
	}
	return Stats{}, c.fail(fmt.Errorf("client: unexpected status 0x%02x", tag))
}

func decodeFoundValues(c *Conn, payload []byte, want int, out []uint64) ([]bool, error) {
	if len(payload) < 4 {
		return nil, c.fail(errors.New("client: short batch response"))
	}
	n := int(wire.Uint32(payload, 0))
	if n != want || len(payload) != 4+n+8*n {
		return nil, c.fail(fmt.Errorf("client: batch response carries %d elements, want %d", n, want))
	}
	oks := make([]bool, n)
	for i := 0; i < n; i++ {
		oks[i] = payload[4+i] == 1
		out[i] = wire.Uint64(payload, 4+n+8*i)
	}
	return oks, nil
}

func decodeFound(c *Conn, payload []byte, want int) ([]bool, error) {
	if len(payload) < 4 {
		return nil, c.fail(errors.New("client: short batch response"))
	}
	n := int(wire.Uint32(payload, 0))
	if n != want || len(payload) != 4+n {
		return nil, c.fail(fmt.Errorf("client: batch response carries %d elements, want %d", n, want))
	}
	oks := make([]bool, n)
	for i := 0; i < n; i++ {
		oks[i] = payload[4+i] == 1
	}
	return oks, nil
}

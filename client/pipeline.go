package client

import (
	"fmt"

	"vmshortcut/internal/wire"
)

// Pipeline queues requests on one Conn and sends them in a single write,
// reading all responses back after one round trip. This is how the
// protocol's pipelining is meant to be driven: the server's per-connection
// coalescer turns a flushed run of same-kind requests into one store
// batch call, so a deep pipeline pays one syscall, one flush, and one
// routing decision for the whole run.
//
// Results come back in submission order; batch calls contribute one
// Result per element. A Pipeline is reusable after Flush and is not safe
// for concurrent use.
type Pipeline struct {
	c       *Conn
	buf     []byte
	pending []pendingOp
	ops     int
	err     error // deferred queueing error (oversized batch), reported by Flush
}

// pendingOp records what response decoding one queued request needs —
// the opcode and, for batch frames, the element count — plus where its
// frame ends in the request buffer, so Flush can write in bounded
// segments.
type pendingOp struct {
	op  byte
	n   int
	end int
}

// Pipeline returns a pipeline over this connection. Do not interleave
// direct Conn calls with an unflushed pipeline.
func (c *Conn) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Result is the outcome of one queued operation.
type Result struct {
	// Found reports presence for GET and DEL; it is true for an
	// acknowledged PUT.
	Found bool
	// Value is the value of a GET hit.
	Value uint64
	// Err is the per-operation server error, if any. Transport errors
	// abort the whole Flush instead.
	Err error
}

// Len returns the number of queued operations (batch elements counted
// individually).
func (p *Pipeline) Len() int { return p.ops }

// Get queues a lookup.
func (p *Pipeline) Get(key uint64) {
	p.buf = wire.AppendKey(p.buf, wire.OpGet, key)
	p.push(wire.OpGet, 1)
}

// Put queues an upsert.
func (p *Pipeline) Put(key, value uint64) {
	p.buf = wire.AppendPut(p.buf, key, value)
	p.push(wire.OpPut, 1)
}

// Del queues a delete.
func (p *Pipeline) Del(key uint64) {
	p.buf = wire.AppendKey(p.buf, wire.OpDel, key)
	p.push(wire.OpDel, 1)
}

// GetBatch queues one native batch lookup frame; it contributes
// len(keys) Results. Batches beyond wire.MaxBatch fail at Flush.
func (p *Pipeline) GetBatch(keys []uint64) {
	if !p.checkBatch(len(keys)) {
		return
	}
	p.buf = wire.AppendKeyBatch(p.buf, wire.OpGetBatch, keys)
	p.push(wire.OpGetBatch, len(keys))
}

// PutBatch queues one native batch upsert frame; it contributes
// len(keys) Results. len(keys) must equal len(values); batches beyond
// wire.MaxBatch fail at Flush.
func (p *Pipeline) PutBatch(keys, values []uint64) {
	if !p.checkBatch(len(keys)) {
		return
	}
	if len(keys) != len(values) {
		p.err = fmt.Errorf("client: PutBatch: %d keys but %d values", len(keys), len(values))
		return
	}
	p.buf = wire.AppendPutBatch(p.buf, keys, values)
	p.push(wire.OpPutBatch, len(keys))
}

// DelBatch queues one native batch delete frame; it contributes
// len(keys) Results. Batches beyond wire.MaxBatch fail at Flush.
func (p *Pipeline) DelBatch(keys []uint64) {
	if !p.checkBatch(len(keys)) {
		return
	}
	p.buf = wire.AppendKeyBatch(p.buf, wire.OpDelBatch, keys)
	p.push(wire.OpDelBatch, len(keys))
}

// checkBatch rejects batch frames the server would refuse (their
// encoding would exceed the frame bound); nothing is queued and the
// error surfaces at Flush, before any bytes hit the wire. A poisoned
// pipeline queues nothing further.
func (p *Pipeline) checkBatch(n int) bool {
	if p.err == nil && n > wire.MaxBatch {
		p.err = errBatchTooLarge(n)
	}
	return p.err == nil
}

func (p *Pipeline) push(op byte, n int) {
	p.pending = append(p.pending, pendingOp{op: op, n: n, end: len(p.buf)})
	p.ops += n
}

// flushSegmentBytes bounds how many request bytes Flush sends before
// draining the corresponding responses. Without the bound, a deep enough
// pipeline deadlocks: the server stops reading once its response buffers
// fill against a client that is still writing. One segment stays well
// under the combined socket buffers, so the server can always finish
// answering a segment while the client reads.
const flushSegmentBytes = 64 << 10

// Flush sends every queued request and reads all responses, appending
// one Result per operation to results (which may be nil) in submission
// order. Requests go out in segments of at most flushSegmentBytes (one
// oversized frame is a segment of its own), each segment's responses
// drained before the next is written, so arbitrarily deep pipelines
// cannot deadlock against the server. The pipeline is empty afterwards
// and can be reused. A transport or framing error aborts the flush and
// kills the Conn.
func (p *Pipeline) Flush(results []Result) ([]Result, error) {
	if p.err != nil {
		return results, p.err
	}
	written := 0
	for i := 0; i < len(p.pending); {
		// Extend the segment while the next frame keeps it under the
		// byte bound; always take at least one frame.
		j := i + 1
		for j < len(p.pending) && p.pending[j].end-written <= flushSegmentBytes {
			j++
		}
		segEnd := p.pending[j-1].end
		if err := p.c.writeAll(p.buf[written:segEnd]); err != nil {
			return results, err
		}
		written = segEnd
		for ; i < j; i++ {
			var err error
			results, err = p.readOne(p.pending[i], results)
			if err != nil {
				return results, err
			}
		}
	}
	p.buf = p.buf[:0]
	p.pending = p.pending[:0]
	p.ops = 0
	return results, nil
}

func (p *Pipeline) readOne(pd pendingOp, results []Result) ([]Result, error) {
	c := p.c
	tag, payload, err := c.readResp()
	if err != nil {
		return results, err
	}
	if tag == wire.StatusErr {
		// One errored response per request frame; batch frames fail as a
		// unit, so fan the error out to every element.
		err := remoteErr(payload)
		for i := 0; i < pd.n; i++ {
			results = append(results, Result{Err: err})
		}
		return results, nil
	}
	switch pd.op {
	case wire.OpGet:
		switch tag {
		case wire.StatusOK:
			if len(payload) < 8 {
				return results, c.fail(fmt.Errorf("client: GET response payload %d bytes, want 8", len(payload)))
			}
			results = append(results, Result{Found: true, Value: wire.Uint64(payload, 0)})
		case wire.StatusNotFound:
			results = append(results, Result{})
		default:
			return results, c.fail(unexpectedStatus(tag))
		}
	case wire.OpPut:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		results = append(results, Result{Found: true})
	case wire.OpDel:
		switch tag {
		case wire.StatusOK:
			results = append(results, Result{Found: true})
		case wire.StatusNotFound:
			results = append(results, Result{})
		default:
			return results, c.fail(unexpectedStatus(tag))
		}
	case wire.OpGetBatch:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		vals := make([]uint64, pd.n)
		oks, err := decodeFoundValues(c, payload, pd.n, vals)
		if err != nil {
			return results, err
		}
		for i := range oks {
			results = append(results, Result{Found: oks[i], Value: vals[i]})
		}
	case wire.OpPutBatch:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		for i := 0; i < pd.n; i++ {
			results = append(results, Result{Found: true})
		}
	case wire.OpDelBatch:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		oks, err := decodeFound(c, payload, pd.n)
		if err != nil {
			return results, err
		}
		for _, ok := range oks {
			results = append(results, Result{Found: ok})
		}
	}
	return results, nil
}

func unexpectedStatus(tag byte) error {
	return fmt.Errorf("client: unexpected status 0x%02x", tag)
}

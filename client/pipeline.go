package client

import (
	"fmt"

	"vmshortcut/internal/op"
	"vmshortcut/internal/wire"
)

// Pipeline queues requests on one Conn and sends them in a single write,
// reading all responses back after one round trip. This is how the
// protocol's pipelining is meant to be driven: the server's per-connection
// coalescer turns a flushed run of same-kind requests into one store
// batch call, so a deep pipeline pays one syscall, one flush, and one
// routing decision for the whole run.
//
// Results come back in submission order; batch calls contribute one
// Result per element. A Pipeline is reusable after Flush and is not safe
// for concurrent use.
type Pipeline struct {
	c       *Conn
	buf     []byte
	pending []pendingOp
	kinds   []op.Kind // arena of queued mixed batches' kind columns
	mres    op.Results
	ops     int
	err     error // deferred queueing error (oversized batch), reported by Flush
}

// pendingOp records what response decoding one queued request needs —
// the opcode, for batch frames the element count, and for mixed frames
// the batch's kind column (a range of the pipeline's kinds arena) — plus
// where its frame ends in the request buffer, so Flush can write in
// bounded segments.
type pendingOp struct {
	op     byte
	n      int
	end    int
	kstart int // mixed only: kinds arena range
}

// Pipeline returns a pipeline over this connection. Do not interleave
// direct Conn calls with an unflushed pipeline.
func (c *Conn) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Result is the outcome of one queued operation.
type Result struct {
	// Found reports presence for GET and DEL; it is true for an
	// acknowledged PUT.
	Found bool
	// Value is the value of a GET hit.
	Value uint64
	// Err is the per-operation server error, if any. Transport errors
	// abort the whole Flush instead.
	Err error
}

// Len returns the number of queued operations (batch elements counted
// individually).
func (p *Pipeline) Len() int { return p.ops }

// Get queues a lookup.
func (p *Pipeline) Get(key uint64) {
	p.buf = wire.AppendKey(p.buf, wire.OpGet, key)
	p.push(wire.OpGet, 1)
}

// Put queues an upsert.
func (p *Pipeline) Put(key, value uint64) {
	p.buf = wire.AppendPut(p.buf, key, value)
	p.push(wire.OpPut, 1)
}

// Del queues a delete.
func (p *Pipeline) Del(key uint64) {
	p.buf = wire.AppendKey(p.buf, wire.OpDel, key)
	p.push(wire.OpDel, 1)
}

// GetBatch queues one native batch lookup frame; it contributes
// len(keys) Results. Batches beyond wire.MaxBatch fail at Flush.
func (p *Pipeline) GetBatch(keys []uint64) {
	if !p.checkBatch(len(keys)) {
		return
	}
	p.buf = wire.AppendKeyBatch(p.buf, wire.OpGetBatch, keys)
	p.push(wire.OpGetBatch, len(keys))
}

// PutBatch queues one native batch upsert frame; it contributes
// len(keys) Results. len(keys) must equal len(values); batches beyond
// wire.MaxBatch fail at Flush.
func (p *Pipeline) PutBatch(keys, values []uint64) {
	if !p.checkBatch(len(keys)) {
		return
	}
	if len(keys) != len(values) {
		p.err = fmt.Errorf("client: PutBatch: %d keys but %d values", len(keys), len(values))
		return
	}
	p.buf = wire.AppendPutBatch(p.buf, keys, values)
	p.push(wire.OpPutBatch, len(keys))
}

// DelBatch queues one native batch delete frame; it contributes
// len(keys) Results. Batches beyond wire.MaxBatch fail at Flush.
func (p *Pipeline) DelBatch(keys []uint64) {
	if !p.checkBatch(len(keys)) {
		return
	}
	p.buf = wire.AppendKeyBatch(p.buf, wire.OpDelBatch, keys)
	p.push(wire.OpDelBatch, len(keys))
}

// MixedBatch accumulates an ordered mix of Get/Put/Del operations for
// submission as ONE wire frame — the client-side face of the serving
// stack's shared operation batch. Where a run of single-op frames pays
// one frame header per op and relies on the server's coalescer, a mixed
// batch frame carries the whole mix in one decode, one store call, and —
// on a durable server — one WAL record appended from the frame's own
// bytes. A MixedBatch is reusable after Reset and is not safe for
// concurrent use.
type MixedBatch struct {
	b op.Batch
}

// Reset empties the batch, retaining its storage.
func (m *MixedBatch) Reset() { m.b.Reset() }

// Len returns the number of queued operations.
func (m *MixedBatch) Len() int { return m.b.Len() }

// Get queues a lookup entry.
func (m *MixedBatch) Get(key uint64) { m.b.Get(key) }

// Put queues an upsert entry.
func (m *MixedBatch) Put(key, value uint64) { m.b.Put(key, value) }

// Del queues a delete entry.
func (m *MixedBatch) Del(key uint64) { m.b.Del(key) }

// Mixed queues m's operations as one MIXEDBATCH frame; it contributes
// m.Len() Results in entry order (Found is presence for Get/Del and
// acceptance for Put; Value is set for Get hits). The batch's contents
// are copied into the pipeline, so m may be reused immediately. Batches
// beyond wire.MaxMixedBatch fail at Flush; an empty batch queues
// nothing.
func (p *Pipeline) Mixed(m *MixedBatch) {
	n := m.b.Len()
	if n == 0 {
		return
	}
	if p.err == nil && n > wire.MaxMixedBatch {
		p.err = fmt.Errorf("client: mixed batch of %d elements exceeds wire.MaxMixedBatch (%d); split it",
			n, wire.MaxMixedBatch)
	}
	if p.err != nil {
		return
	}
	kstart := len(p.kinds)
	p.kinds = append(p.kinds, m.b.Kinds()...)
	p.buf = wire.AppendMixedBatch(p.buf, &m.b)
	p.pending = append(p.pending, pendingOp{op: wire.OpMixedBatch, n: n, end: len(p.buf), kstart: kstart})
	p.ops += n
}

// checkBatch rejects batch frames the server would refuse (their
// encoding would exceed the frame bound); nothing is queued and the
// error surfaces at Flush, before any bytes hit the wire. A poisoned
// pipeline queues nothing further.
func (p *Pipeline) checkBatch(n int) bool {
	if p.err == nil && n > wire.MaxBatch {
		p.err = errBatchTooLarge(n)
	}
	return p.err == nil
}

func (p *Pipeline) push(op byte, n int) {
	p.pending = append(p.pending, pendingOp{op: op, n: n, end: len(p.buf)})
	p.ops += n
}

// flushSegmentBytes bounds how many request bytes Flush sends before
// draining the corresponding responses. Without the bound, a deep enough
// pipeline deadlocks: the server stops reading once its response buffers
// fill against a client that is still writing. One segment stays well
// under the combined socket buffers, so the server can always finish
// answering a segment while the client reads.
const flushSegmentBytes = 64 << 10

// Flush sends every queued request and reads all responses, appending
// one Result per operation to results (which may be nil) in submission
// order. Requests go out in segments of at most flushSegmentBytes (one
// oversized frame is a segment of its own), each segment's responses
// drained before the next is written, so arbitrarily deep pipelines
// cannot deadlock against the server. The pipeline is empty afterwards
// and can be reused. A transport or framing error aborts the flush and
// kills the Conn.
func (p *Pipeline) Flush(results []Result) ([]Result, error) {
	if p.err != nil {
		return results, p.err
	}
	written := 0
	for i := 0; i < len(p.pending); {
		// Extend the segment while the next frame keeps it under the
		// byte bound; always take at least one frame.
		j := i + 1
		for j < len(p.pending) && p.pending[j].end-written <= flushSegmentBytes {
			j++
		}
		segEnd := p.pending[j-1].end
		if err := p.c.writeAll(p.buf[written:segEnd]); err != nil {
			return results, err
		}
		written = segEnd
		for ; i < j; i++ {
			var err error
			results, err = p.readOne(p.pending[i], results)
			if err != nil {
				return results, err
			}
		}
	}
	p.buf = p.buf[:0]
	p.pending = p.pending[:0]
	p.kinds = p.kinds[:0]
	p.ops = 0
	return results, nil
}

func (p *Pipeline) readOne(pd pendingOp, results []Result) ([]Result, error) {
	c := p.c
	tag, payload, err := c.readResp()
	if err != nil {
		return results, err
	}
	if tag == wire.StatusErr || tag == wire.StatusReadOnly || tag == wire.StatusStale {
		// One errored response per request frame; batch frames fail as a
		// unit, so fan the error out to every element. The replica
		// refusals land here too: a replica answers a coalesced pipeline
		// per frame, serving the reads and refusing the mutations.
		err := refusalErr(tag)
		if err == nil {
			err = remoteErr(payload)
		}
		for i := 0; i < pd.n; i++ {
			results = append(results, Result{Err: err})
		}
		return results, nil
	}
	switch pd.op {
	case wire.OpGet:
		switch tag {
		case wire.StatusOK:
			if len(payload) < 8 {
				return results, c.fail(fmt.Errorf("client: GET response payload %d bytes, want 8", len(payload)))
			}
			results = append(results, Result{Found: true, Value: wire.Uint64(payload, 0)})
		case wire.StatusNotFound:
			results = append(results, Result{})
		default:
			return results, c.fail(unexpectedStatus(tag))
		}
	case wire.OpPut:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		results = append(results, Result{Found: true})
	case wire.OpDel:
		switch tag {
		case wire.StatusOK:
			results = append(results, Result{Found: true})
		case wire.StatusNotFound:
			results = append(results, Result{})
		default:
			return results, c.fail(unexpectedStatus(tag))
		}
	case wire.OpGetBatch:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		vals := make([]uint64, pd.n)
		oks, err := decodeFoundValues(c, payload, pd.n, vals)
		if err != nil {
			return results, err
		}
		for i := range oks {
			results = append(results, Result{Found: oks[i], Value: vals[i]})
		}
	case wire.OpPutBatch:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		for i := 0; i < pd.n; i++ {
			results = append(results, Result{Found: true})
		}
	case wire.OpDelBatch:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		oks, err := decodeFound(c, payload, pd.n)
		if err != nil {
			return results, err
		}
		for _, ok := range oks {
			results = append(results, Result{Found: ok})
		}
	case wire.OpMixedBatch:
		if tag != wire.StatusOK {
			return results, c.fail(unexpectedStatus(tag))
		}
		kinds := p.kinds[pd.kstart : pd.kstart+pd.n]
		if err := wire.DecodeMixedResults(payload, kinds, &p.mres); err != nil {
			return results, c.fail(err)
		}
		for i := range kinds {
			results = append(results, Result{Found: p.mres.Found[i], Value: p.mres.Vals[i]})
		}
	}
	return results, nil
}

func unexpectedStatus(tag byte) error {
	return fmt.Errorf("client: unexpected status 0x%02x", tag)
}

package client_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"vmshortcut"
	"vmshortcut/client"
	"vmshortcut/server"
)

func startServer(t *testing.T) string {
	t.Helper()
	store, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
		vmshortcut.WithConcurrency(true), vmshortcut.WithPollInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := server.New(server.Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestDialFailsFast(t *testing.T) {
	// A port nothing listens on: Dial must fail eagerly, not on first op.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := client.Dial(addr, client.WithDialTimeout(2*time.Second)); err == nil {
		t.Fatal("Dial to a dead address succeeded")
	}
}

func TestClientClosed(t *testing.T) {
	addr := startServer(t)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := cl.Put(1, 2); err != client.ErrClientClosed {
		t.Fatalf("Put after Close = %v, want ErrClientClosed", err)
	}
}

func TestBrokenConnNotPooled(t *testing.T) {
	addr := startServer(t)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Break a connection from inside Do; the pool must discard it and the
	// next operation must transparently dial a fresh one.
	cl.Do(func(c *client.Conn) error {
		c.Close()
		_, _, err := c.Get(1) // fails, marks the Conn broken
		if err == nil {
			t.Error("Get on a closed Conn succeeded")
		}
		return nil
	})
	if err := cl.Put(5, 50); err != nil {
		t.Fatalf("Put after discarding broken conn: %v", err)
	}
	if v, found, err := cl.Get(5); err != nil || !found || v != 50 {
		t.Fatalf("Get(5) = %d, %v, %v", v, found, err)
	}
}

// TestDeepPipelineNoDeadlock queues far more request bytes than the
// combined socket buffers hold; Flush's segmented write/read interleave
// must complete it where a write-everything-then-read client would
// deadlock against the server.
func TestDeepPipelineNoDeadlock(t *testing.T) {
	addr := startServer(t)
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200_000 // ≈2.6 MB of GET frames
	p := c.Pipeline()
	if err := c.Put(1, 11); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p.Get(1)
	}
	done := make(chan struct{})
	var res []client.Result
	go func() {
		defer close(done)
		res, err = p.Flush(nil)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deep pipeline Flush deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n || !res[0].Found || res[0].Value != 11 || !res[n-1].Found {
		t.Fatalf("deep pipeline results wrong: len=%d first=%+v", len(res), res[0])
	}
}

// TestOversizedBatchRejectedClientSide: a batch beyond wire.MaxBatch must
// fail with an actionable error and leave the connection usable.
func TestOversizedBatchRejectedClientSide(t *testing.T) {
	addr := startServer(t)
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	huge := make([]uint64, 70_000)
	if err := c.PutBatch(huge, huge); err == nil || !strings.Contains(err.Error(), "MaxBatch") {
		t.Fatalf("PutBatch(70k) = %v, want MaxBatch error", err)
	}
	if _, err := c.GetBatch(huge, make([]uint64, len(huge))); err == nil {
		t.Fatal("GetBatch(70k) accepted")
	}
	if _, err := c.DelBatch(huge); err == nil {
		t.Fatal("DelBatch(70k) accepted")
	}
	// The connection must still work: nothing was written.
	if err := c.Put(3, 33); err != nil {
		t.Fatalf("conn dead after rejected batch: %v", err)
	}
	// Pipeline batch queueing is poisoned, reported at Flush.
	p := c.Pipeline()
	p.GetBatch(huge)
	if _, err := p.Flush(nil); err == nil || !strings.Contains(err.Error(), "MaxBatch") {
		t.Fatalf("pipeline Flush = %v, want MaxBatch error", err)
	}
}

func TestEmptyPipelineFlush(t *testing.T) {
	addr := startServer(t)
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := c.Pipeline()
	res, err := p.Flush(nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty Flush = %v, %v", res, err)
	}
	// Reuse after an op-bearing flush.
	p.Put(1, 2)
	if res, err = p.Flush(nil); err != nil || len(res) != 1 || !res[0].Found {
		t.Fatalf("Flush = %+v, %v", res, err)
	}
	if p.Len() != 0 {
		t.Fatalf("pipeline not reset: Len = %d", p.Len())
	}
}

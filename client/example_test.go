package client_test

import (
	"context"
	"fmt"
	"log"
	"net"

	"vmshortcut"
	"vmshortcut/client"
	"vmshortcut/server"
)

// ExampleClient starts an in-process KV server over a Shortcut-EH store,
// connects the pooled client, and runs single ops, a native batch, and a
// pipelined round trip — the full surface a networked consumer uses.
func ExampleClient() {
	store, err := vmshortcut.Open(vmshortcut.KindShortcutEH, vmshortcut.WithConcurrency(true))
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	srv, err := server.New(server.Config{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Single round trips.
	if err := cl.Put(1, 100); err != nil {
		log.Fatal(err)
	}
	v, found, err := cl.Get(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("get 1:", v, found)

	// One batch frame becomes one InsertBatch on the server.
	if err := cl.PutBatch([]uint64{2, 3, 4}, []uint64{200, 300, 400}); err != nil {
		log.Fatal(err)
	}
	out := make([]uint64, 3)
	oks, err := cl.GetBatch([]uint64{2, 3, 99}, out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("batch:", out[0], out[1], oks[2])

	// A pipeline overlaps requests on one pooled connection; the server
	// coalesces the GET run into a single LookupBatch.
	err = cl.Do(func(c *client.Conn) error {
		p := c.Pipeline()
		p.Get(2)
		p.Get(3)
		p.Del(4)
		res, err := p.Flush(nil)
		if err != nil {
			return err
		}
		fmt.Println("pipeline:", res[0].Value, res[1].Value, res[2].Found)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Output:
	// get 1: 100 true
	// batch: 200 300 false
	// pipeline: 200 300 true
}

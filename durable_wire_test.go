package vmshortcut_test

import (
	"os"
	"path/filepath"
	"testing"

	"vmshortcut"
	"vmshortcut/internal/op"
	"vmshortcut/internal/wire"
)

// TestDurableZeroReencode pins the unified pipeline's headline property:
// a batch that arrives as wire bytes (decoded the way the server decodes
// a frame) reaches the WAL with ZERO payload re-encodings — the record's
// payload on disk is the frame payload, byte for byte. (External test
// package: internal/wire imports the root package, so the in-package
// tests cannot import it back.)
func TestDurableZeroReencode(t *testing.T) {
	dir := t.TempDir()
	s, err := vmshortcut.Open(vmshortcut.KindHT,
		vmshortcut.WithWAL(dir), vmshortcut.WithFsync(vmshortcut.FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	// The frame a client would send (encoded client-side; not counted
	// against the server path below).
	var m vmshortcut.OpBatch
	m.Put(1, 11)
	m.Get(1)
	m.Del(2)
	frame := wire.AppendMixedBatch(nil, &m)
	payload := frame[wire.HeaderSize:]

	var b vmshortcut.OpBatch
	var res vmshortcut.OpResults
	if err := wire.DecodeBatch(frame[4], payload, &b); err != nil {
		t.Fatal(err)
	}
	before := op.Encodings()
	if err := s.ApplyBatch(&b, &res); err != nil {
		t.Fatal(err)
	}
	if got := op.Encodings(); got != before {
		t.Fatalf("wire→WAL path performed %d payload encodings, want 0", got-before)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The one record's payload is the frame payload.
	blob, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	// u32 len | u32 crc | u64 lsn | u8 code | payload
	if len(blob) != 8+9+len(payload) || blob[16] != wire.OpMixedBatch {
		t.Fatalf("record framing = %d bytes, code %#x", len(blob), blob[16])
	}
	if string(blob[17:]) != string(payload) {
		t.Fatal("WAL record payload differs from the wire frame payload")
	}
}

// BenchmarkDurableApplyBatch measures the WAL-enabled ApplyBatch path
// the server drives: a pre-encoded mixed payload (half PUT / half GET,
// as YCSB mix A would gather) is decoded as the server decodes a frame
// and applied to a durable store with -fsync off. The reported
// encodings/op metric is the acceptance gate for the unified pipeline:
// it must be 0.000 — the WAL record is the wire payload, never re-packed
// — where the pre-refactor stack re-encoded every record.
func BenchmarkDurableApplyBatch(b *testing.B) {
	dir := b.TempDir()
	s, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
		vmshortcut.WithWAL(dir), vmshortcut.WithFsync(vmshortcut.FsyncOff))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	// One reusable frame payload of 128 ops: alternating PUT/GET over a
	// small key set, the shape a coalesced pipeline round produces.
	var m vmshortcut.OpBatch
	for i := uint64(0); i < 128; i += 2 {
		m.Put(i, i)
		m.Get(i)
	}
	payload := m.AppendMixedPayload(nil)

	var batch vmshortcut.OpBatch
	var res vmshortcut.OpResults
	encBefore := op.Encodings()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.DecodeBatch(wire.OpMixedBatch, payload, &batch); err != nil {
			b.Fatal(err)
		}
		if err := s.ApplyBatch(&batch, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(op.Encodings()-encBefore)/float64(b.N), "encodings/op")
	if op.Encodings() != encBefore {
		b.Fatalf("durable ApplyBatch re-encoded %d payloads", op.Encodings()-encBefore)
	}
}

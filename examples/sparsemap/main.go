// sparsemap: the radix-map application of shortcuts — a sparse
// direct-mapped row-id → value index (think: a columnar store's rowid
// lookup side) whose single wide inner node is expressed in the page
// table.
//
// Unlike Shortcut-EH, this structure maintains its shortcut synchronously:
// the inner node only changes when a 480-key leaf is allocated or freed,
// so the remap cost amortizes to nothing and reads always take the
// one-indirection path.
//
// Run with: go run ./examples/sparsemap
package main

import (
	"fmt"
	"log"
	"time"

	"vmshortcut"
)

func main() {
	pool, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
	if err != nil {
		log.Fatalf("pool: %v", err)
	}
	defer pool.Close()

	const capacity = 50_000_000 // row-id space
	m, err := vmshortcut.NewRadixMap(pool, vmshortcut.RadixMapConfig{Capacity: capacity})
	if err != nil {
		log.Fatalf("radix map: %v", err)
	}
	defer m.Close()

	// A sparse population: every 1000th row-id carries a value, in a few
	// dense runs — the pattern that makes direct-mapped indexes shine.
	start := time.Now()
	stored := 0
	for base := uint64(0); base < capacity; base += 5_000_000 {
		for i := uint64(0); i < 200_000; i += 100 {
			if err := m.Set(base+i, base+i+1); err != nil {
				log.Fatalf("set: %v", err)
			}
			stored++
		}
	}
	fmt.Printf("stored %d entries over a %d-key space in %s\n",
		stored, capacity, time.Since(start).Round(time.Millisecond))
	fmt.Printf("inner node: %d slots, %d leaves allocated (%.2f MB resident)\n",
		m.Slots(), m.LeafAllocs, float64(m.LeafAllocs)*4096/1e6)

	// Point lookups through the page table.
	start = time.Now()
	hits := 0
	for probe := uint64(0); probe < capacity; probe += 999 {
		if _, ok := m.Get(probe); ok {
			hits++
		}
	}
	fmt.Printf("probed %d row-ids in %s (%d hits)\n",
		capacity/999+1, time.Since(start).Round(time.Millisecond), hits)

	// Ordered iteration over the sparse contents.
	var first, last uint64
	n := 0
	m.Range(func(k, v uint64) bool {
		if n == 0 {
			first = k
		}
		last = k
		n++
		return true
	})
	fmt.Printf("Range visited %d entries, keys %d .. %d\n", n, first, last)

	// Dense deletion frees leaves back to the pool.
	before := m.LeafFrees
	for i := uint64(0); i < 200_000; i += 100 {
		m.Delete(i)
	}
	fmt.Printf("deleted first run: %d leaves returned to the pool\n", m.LeafFrees-before)
}

// sparsemap: the radix-map application of shortcuts — a sparse
// direct-mapped row-id → value index (think: a columnar store's rowid
// lookup side) whose single wide inner node is expressed in the page
// table.
//
// Unlike Shortcut-EH, this structure maintains its shortcut synchronously:
// the inner node only changes when a 480-key leaf is allocated or freed,
// so the remap cost amortizes to nothing and reads always take the
// one-indirection path.
//
// Run with: go run ./examples/sparsemap
package main

import (
	"fmt"
	"log"
	"time"

	"vmshortcut"
)

func main() {
	const capacity = 50_000_000 // row-id space
	idx, err := vmshortcut.Open(vmshortcut.KindRadix, vmshortcut.WithCapacity(capacity))
	if err != nil {
		log.Fatalf("radix map: %v", err)
	}
	defer idx.Close()

	// A sparse population: every 1000th row-id carries a value, in a few
	// dense runs — the pattern that makes direct-mapped indexes shine.
	start := time.Now()
	stored := 0
	for base := uint64(0); base < capacity; base += 5_000_000 {
		for i := uint64(0); i < 200_000; i += 100 {
			if err := idx.Insert(base+i, base+i+1); err != nil {
				log.Fatalf("insert: %v", err)
			}
			stored++
		}
	}
	st := idx.Stats()
	fmt.Printf("stored %d entries over a %d-key space in %s\n",
		stored, capacity, time.Since(start).Round(time.Millisecond))
	fmt.Printf("inner node: %d slots, %d leaves live (%.2f MB resident)\n",
		st.DirectorySlots, st.Buckets, float64(st.Buckets)*4096/1e6)

	// Point lookups through the page table.
	start = time.Now()
	hits := 0
	for probe := uint64(0); probe < capacity; probe += 999 {
		if _, ok := idx.Lookup(probe); ok {
			hits++
		}
	}
	fmt.Printf("probed %d row-ids in %s (%d hits)\n",
		capacity/999+1, time.Since(start).Round(time.Millisecond), hits)

	// Ordered iteration over the sparse contents needs the concrete map
	// behind the facade.
	m, ok := vmshortcut.AsRadixMap(idx)
	if !ok {
		log.Fatal("not a radix store")
	}
	var first, last uint64
	n := 0
	m.Range(func(k, v uint64) bool {
		if n == 0 {
			first = k
		}
		last = k
		n++
		return true
	})
	fmt.Printf("Range visited %d entries, keys %d .. %d\n", n, first, last)

	// Dense deletion frees leaves back to the pool.
	before := idx.Stats().Buckets
	for i := uint64(0); i < 200_000; i += 100 {
		idx.Delete(i)
	}
	fmt.Printf("deleted first run: %d leaves returned to the pool\n",
		before-idx.Stats().Buckets)
}

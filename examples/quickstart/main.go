// Quickstart: open a Shortcut-EH index with a single call, insert a
// million entries, and watch the shortcut directory take over lookups
// once it is in sync.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"vmshortcut"
)

func main() {
	// One call: Open creates and owns the pool of physical pages backing
	// the buckets; the shortcut directory rewires its virtual pages
	// straight onto them. Close releases both.
	idx, err := vmshortcut.Open(vmshortcut.KindShortcutEH)
	if err != nil {
		log.Fatalf("opening Shortcut-EH: %v", err)
	}
	defer idx.Close()

	const n = 1_000_000
	start := time.Now()
	for k := uint64(1); k <= n; k++ {
		if err := idx.Insert(k, k*k); err != nil {
			log.Fatalf("insert: %v", err)
		}
	}
	fmt.Printf("inserted %d entries in %s\n", n, time.Since(start).Round(time.Millisecond))
	st := idx.Stats()
	fmt.Printf("directory: global depth %d, %d buckets, avg fan-in %.2f\n",
		st.GlobalDepth, st.Buckets, st.AvgFanIn)

	// The mapper thread replays directory modifications asynchronously;
	// wait for the shortcut to catch up (usually a poll interval or two).
	if idx.WaitSync(5 * time.Second) {
		fmt.Println("shortcut directory is in sync — lookups take the page-table path")
	} else {
		fmt.Println("shortcut still catching up — lookups use the pointer directory")
	}

	start = time.Now()
	for k := uint64(1); k <= n; k++ {
		v, ok := idx.Lookup(k)
		if !ok || v != k*k {
			log.Fatalf("lookup(%d) = %d, %v", k, v, ok)
		}
	}
	fmt.Printf("looked up %d entries in %s\n", n, time.Since(start).Round(time.Millisecond))

	st = idx.Stats()
	fmt.Printf("routing: %d lookups via shortcut, %d via traditional directory\n",
		st.ShortcutLookups, st.TraditionalLookups)
	fmt.Printf("maintenance: %d splits replayed, %d directory rebuilds, %d mmap calls\n",
		st.UpdatesApplied, st.CreatesApplied, st.Remaps)
}

// Quickstart: build a Shortcut-EH index, insert a million entries, and
// watch the shortcut directory take over lookups once it is in sync.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"vmshortcut"
)

func main() {
	// A pool of physical pages backs every bucket; the shortcut directory
	// rewires its virtual pages straight onto them.
	p, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
	if err != nil {
		log.Fatalf("creating page pool: %v", err)
	}
	defer p.Close()

	idx, err := vmshortcut.NewShortcutEH(p, vmshortcut.ShortcutEHConfig{})
	if err != nil {
		log.Fatalf("creating Shortcut-EH: %v", err)
	}
	defer idx.Close()

	const n = 1_000_000
	start := time.Now()
	for k := uint64(1); k <= n; k++ {
		if err := idx.Insert(k, k*k); err != nil {
			log.Fatalf("insert: %v", err)
		}
	}
	fmt.Printf("inserted %d entries in %s\n", n, time.Since(start).Round(time.Millisecond))
	fmt.Printf("directory: global depth %d, %d buckets, avg fan-in %.2f\n",
		idx.EH().GlobalDepth(), idx.EH().Buckets(), idx.AvgFanIn())

	// The mapper thread replays directory modifications asynchronously;
	// wait for the shortcut to catch up (usually a poll interval or two).
	if idx.WaitSync(5 * time.Second) {
		fmt.Println("shortcut directory is in sync — lookups take the page-table path")
	} else {
		fmt.Println("shortcut still catching up — lookups use the pointer directory")
	}

	start = time.Now()
	for k := uint64(1); k <= n; k++ {
		v, ok := idx.Lookup(k)
		if !ok || v != k*k {
			log.Fatalf("lookup(%d) = %d, %v", k, v, ok)
		}
	}
	fmt.Printf("looked up %d entries in %s\n", n, time.Since(start).Round(time.Millisecond))

	s := idx.Stats()
	fmt.Printf("routing: %d lookups via shortcut, %d via traditional directory\n",
		s.ShortcutLookups, s.TraditionalLookups)
	fmt.Printf("maintenance: %d splits replayed, %d directory rebuilds, %d mmap calls\n",
		s.UpdatesApplied, s.CreatesApplied, s.Remaps)
}

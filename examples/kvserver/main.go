// kvserver: a self-contained demo of the network KV service — it starts
// the binary-protocol server (package server) over a Shortcut-EH store,
// drives it through the Go client (package client), and prints what
// happened on the wire, including how the per-connection coalescer turned
// the pipelined requests into store batch calls.
//
// This is the smallest end-to-end serving example; the production-shaped
// pieces are cmd/ehserver (the standalone daemon, every Open option as a
// flag) and cmd/ehload (the YCSB load generator that writes
// BENCH_server.json).
//
// Run with:  go run ./examples/kvserver [-addr 127.0.0.1:0]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"vmshortcut"
	"vmshortcut/client"
	"vmshortcut/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (defaults to an ephemeral loopback port)")
	flag.Parse()

	// The store: the paper's Shortcut-EH behind the uniform facade, with
	// the concurrent wrapper so connection goroutines can share it.
	store, err := vmshortcut.Open(vmshortcut.KindShortcutEH, vmshortcut.WithConcurrency(true))
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer store.Close()

	// The server: one Config field is mandatory — the store. The batch
	// window is left at 0: only requests already buffered on a connection
	// coalesce, adding no latency.
	srv, err := server.New(server.Config{Store: store, Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	fmt.Printf("kvserver listening on %s\n", ln.Addr())

	// The client: a pooled Dial plus a pinned-connection pipeline.
	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Single round trips.
	if err := cl.Put(1, 100); err != nil {
		log.Fatal(err)
	}
	v, found, err := cl.Get(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET 1 -> %d (found=%v)\n", v, found)

	// One native batch frame = one InsertBatch against the store.
	keys := make([]uint64, 1000)
	vals := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i) * 7
		vals[i] = uint64(i)
	}
	if err := cl.PutBatch(keys, vals); err != nil {
		log.Fatal(err)
	}

	// A pipelined burst: the server's coalescer gathers the GET run into
	// a single LookupBatch, so Shortcut-EH's routing decision is made
	// once for the whole run.
	err = cl.Do(func(c *client.Conn) error {
		p := c.Pipeline()
		for i := 0; i < 500; i++ {
			p.Get(uint64(i) * 7)
		}
		res, err := p.Flush(nil)
		if err != nil {
			return err
		}
		misses := 0
		for _, r := range res {
			if !r.Found {
				misses++
			}
		}
		fmt.Printf("pipelined 500 GETs in one round trip (%d misses)\n", misses)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// STATS shows both layers: serving counters and the store's uniform
	// Stats — the batch counters prove the coalescing happened.
	st, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d ops, %d coalesced batches carrying %d ops\n",
		st.Server.Ops, st.Server.CoalescedBatches, st.Server.CoalescedOps)
	fmt.Printf("store:  %d entries, batch calls insert/lookup/delete = %d/%d/%d, in_sync=%v\n",
		st.Store.Entries, st.Store.InsertBatches, st.Store.LookupBatches,
		st.Store.DeleteBatches, st.Store.InSync)

	// Graceful shutdown: drain in-flight requests, then let the mapper
	// catch up before the store closes.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	store.WaitSync(5 * time.Second)
	fmt.Println("drained and closed")
}

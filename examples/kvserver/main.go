// kvserver: a minimal Redis-flavoured TCP key-value server backed by
// Shortcut-EH — the kind of workload the paper's HTI baseline (the Redis
// dictionary) serves, here answered through the page table.
//
// The index is opened with WithConcurrency, so connections operate on it
// directly: lookups run in parallel under a read lock, mutations get the
// write lock, matching the paper's single-writer model without an
// app-level mutex.
//
// Protocol (one command per line, values are unsigned 64-bit integers):
//
//	SET <key> <value>   -> OK
//	GET <key>           -> <value> | NOT_FOUND
//	DEL <key>           -> OK | NOT_FOUND
//	LEN                 -> <count>
//	STATS               -> routing and maintenance counters
//	QUIT                -> closes the connection
//
// Run with:  go run ./examples/kvserver [-addr :6380]
// Try it:    printf 'SET 1 42\nGET 1\nSTATS\nQUIT\n' | nc localhost 6380
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"

	"vmshortcut"
)

// server answers the line protocol from a concurrency-safe Store.
type server struct {
	idx vmshortcut.Store
}

func (s *server) handle(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return ""
	}
	switch strings.ToUpper(fields[0]) {
	case "SET":
		if len(fields) != 3 {
			return "ERR usage: SET <key> <value>"
		}
		k, err1 := strconv.ParseUint(fields[1], 10, 64)
		v, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return "ERR keys and values are uint64"
		}
		if err := s.idx.Insert(k, v); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET <key>"
		}
		k, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "ERR keys are uint64"
		}
		if v, ok := s.idx.Lookup(k); ok {
			return strconv.FormatUint(v, 10)
		}
		return "NOT_FOUND"
	case "DEL":
		if len(fields) != 2 {
			return "ERR usage: DEL <key>"
		}
		k, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "ERR keys are uint64"
		}
		if s.idx.Delete(k) {
			return "OK"
		}
		return "NOT_FOUND"
	case "LEN":
		return strconv.Itoa(s.idx.Len())
	case "STATS":
		st := s.idx.Stats()
		return fmt.Sprintf(
			"entries=%d global_depth=%d buckets=%d fan_in=%.2f in_sync=%v "+
				"shortcut_lookups=%d traditional_lookups=%d replayed_updates=%d rebuilds=%d",
			st.Entries, st.GlobalDepth, st.Buckets, st.AvgFanIn, st.InSync,
			st.ShortcutLookups, st.TraditionalLookups, st.UpdatesApplied, st.CreatesApplied)
	case "QUIT":
		return "BYE"
	}
	return "ERR unknown command"
}

func main() {
	addr := flag.String("addr", ":6380", "listen address")
	flag.Parse()

	idx, err := vmshortcut.Open(vmshortcut.KindShortcutEH, vmshortcut.WithConcurrency(true))
	if err != nil {
		log.Fatalf("index: %v", err)
	}
	defer idx.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	log.Printf("kvserver (Shortcut-EH) listening on %s", *addr)

	st := &server{idx: idx}
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go serve(conn, st)
	}
}

func serve(conn net.Conn, st *server) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp := st.handle(sc.Text())
		if resp == "" {
			continue
		}
		fmt.Fprintln(w, resp)
		w.Flush()
		if resp == "BYE" {
			return
		}
	}
}

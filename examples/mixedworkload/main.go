// mixedworkload: a live view of the Figure 8 scenario — insert bursts
// desynchronize the shortcut directory, lookups transparently fall back to
// the traditional directory, and the mapper thread catches up within a few
// poll intervals.
//
// Run with: go run ./examples/mixedworkload
package main

import (
	"fmt"
	"log"
	"time"

	"vmshortcut"
)

func main() {
	idx, err := vmshortcut.Open(vmshortcut.KindShortcutEH,
		vmshortcut.WithPollInterval(vmshortcut.DefaultPollInterval))
	if err != nil {
		log.Fatalf("index: %v", err)
	}
	defer idx.Close()

	// Bulk load.
	const bulk = 500_000
	for k := uint64(1); k <= bulk; k++ {
		if err := idx.Insert(k, k); err != nil {
			log.Fatalf("bulk insert: %v", err)
		}
	}
	idx.WaitSync(10 * time.Second)
	st := idx.Stats()
	fmt.Printf("bulk-loaded %d entries; directory versions: trad=%d shortcut=%d\n\n",
		bulk, st.TradVersion, st.ShortcutVersion)

	// Fire waves: a burst of inserts followed by a lookup phase, printing
	// the synchronization state as it evolves.
	next := uint64(bulk + 1)
	for wave := 1; wave <= 4; wave++ {
		fmt.Printf("--- wave %d ---\n", wave)
		for i := 0; i < 20_000; i++ {
			if err := idx.Insert(next, next); err != nil {
				log.Fatalf("insert: %v", err)
			}
			next++
		}
		st = idx.Stats()
		fmt.Printf("after insert burst:  trad=%-4d shortcut=%-4d in_sync=%-5v (lookups -> %s)\n",
			st.TradVersion, st.ShortcutVersion, st.InSync, route(st))

		// Lookup phase: watch the mapper catch up mid-phase.
		deadline := time.Now().Add(200 * time.Millisecond)
		lookups := 0
		for time.Now().Before(deadline) {
			k := uint64(lookups%int(next-1)) + 1
			if _, ok := idx.Lookup(k); !ok {
				log.Fatalf("lost key %d", k)
			}
			lookups++
		}
		st = idx.Stats()
		fmt.Printf("after %6d lookups: trad=%-4d shortcut=%-4d in_sync=%-5v (lookups -> %s)\n\n",
			lookups, st.TradVersion, st.ShortcutVersion, st.InSync, route(st))
	}

	st = idx.Stats()
	fmt.Printf("totals: %d shortcut-routed lookups, %d traditional, %d replayed splits, %d rebuilds\n",
		st.ShortcutLookups, st.TraditionalLookups, st.UpdatesApplied, st.CreatesApplied)
}

func route(st vmshortcut.Stats) string {
	if st.UsingShortcut {
		return "shortcut directory"
	}
	return "traditional directory"
}

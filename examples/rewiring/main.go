// Rewiring: the Figure 1 scenario of the paper, reproduced byte for byte.
//
// A traditional radix inner node holds pointers to three leaf pages; the
// equivalent shortcut node expresses the same three indirections purely in
// the page table. Both views then observably alias the same physical
// memory: a write through the pool window appears through the shortcut and
// vice versa.
//
// Run with: go run ./examples/rewiring
package main

import (
	"fmt"
	"log"

	"vmshortcut"
)

func main() {
	pool, err := vmshortcut.NewPool(vmshortcut.PoolConfig{})
	if err != nil {
		log.Fatalf("pool: %v", err)
	}
	defer pool.Close()

	// Three leaf pages from the pool (ppage0, ppage1, ppage3 of Figure 3 —
	// the pool hands them out in file order).
	leaves, err := pool.AllocN(3)
	if err != nil {
		log.Fatalf("alloc leaves: %v", err)
	}
	for i, ref := range leaves {
		copy(pool.Page(ref), fmt.Sprintf("leaf-%d payload", i))
	}

	// Traditional inner node: four slots, three pointers, slot 3 empty —
	// lookups resolve three indirections.
	trad := vmshortcut.NewTraditionalNode(pool, 4)
	for i, ref := range leaves {
		trad.Set(i, ref)
	}

	// Shortcut inner node: the same indirections expressed in the page
	// table — lookups resolve a single indirection.
	sc, err := vmshortcut.NewShortcutNode(pool, 4)
	if err != nil {
		log.Fatalf("shortcut: %v", err)
	}
	defer sc.Close()
	calls, err := sc.SetFromTraditional(trad, true)
	if err != nil {
		log.Fatalf("rewiring: %v", err)
	}
	fmt.Printf("rewired 3 slots with %d mmap call(s)\n", calls)

	for slot := 0; slot < 4; slot++ {
		t, s := trad.Leaf(slot), sc.Leaf(slot)
		switch {
		case t == nil && s == nil:
			fmt.Printf("slot %d: empty in both views\n", slot)
		case string(t[:6]) == string(s[:6]):
			fmt.Printf("slot %d: both views read %q\n", slot, string(s[:14]))
		default:
			log.Fatalf("slot %d: views disagree", slot)
		}
	}

	// The aliasing demonstration: write through the shortcut, read through
	// the pool window.
	copy(sc.Leaf(1), "rewired write!")
	fmt.Printf("after shortcut write, pool window reads %q\n",
		string(pool.Page(leaves[1])[:14]))

	// Updates are re-execution of step (2): remap slot 1 to leaf 2.
	if err := sc.Set(1, leaves[2], true); err != nil {
		log.Fatalf("update: %v", err)
	}
	fmt.Printf("after remap, slot 1 reads %q (was leaf-1, now leaf-2)\n",
		string(sc.Leaf(1)[:14]))
}

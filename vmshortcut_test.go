package vmshortcut

import (
	"bytes"
	"testing"
	"time"
)

// deferredBuffer is a tiny bytes.Buffer wrapper so the test reads the
// snapshot back through a plain io.Reader.
type deferredBuffer struct{ bytes.Buffer }

func (b *deferredBuffer) reader() *bytes.Reader { return bytes.NewReader(b.Bytes()) }

// TestFacadeIndexes drives every index constructor through the Index
// interface — the integration test of the public API.
func TestFacadeIndexes(t *testing.T) {
	p, err := NewPool(PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ehTbl, err := NewExtendibleHashing(p, ExtendibleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPool(PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	scTbl, err := NewShortcutEH(p2, ShortcutEHConfig{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer scTbl.Close()

	indexes := map[string]Index{
		"HT":          NewHashTable(HashTableConfig{}),
		"HTI":         NewIncrementalHashTable(IncrementalConfig{}),
		"CH":          NewChainedHashTable(ChainedConfig{TableBytes: 1 << 16}),
		"EH":          ehTbl,
		"Shortcut-EH": scTbl,
	}
	const n = 20000
	for name, idx := range indexes {
		for k := uint64(1); k <= n; k++ {
			if err := idx.Insert(k, k*2); err != nil {
				t.Fatalf("%s: Insert(%d): %v", name, k, err)
			}
		}
		if idx.Len() != n {
			t.Fatalf("%s: Len = %d", name, idx.Len())
		}
		for k := uint64(1); k <= n; k += 7 {
			v, ok := idx.Lookup(k)
			if !ok || v != k*2 {
				t.Fatalf("%s: Lookup(%d) = %d,%v", name, k, v, ok)
			}
		}
		if !idx.Delete(5) || idx.Delete(5) {
			t.Fatalf("%s: delete semantics broken", name)
		}
		if idx.Len() != n-1 {
			t.Fatalf("%s: Len after delete = %d", name, idx.Len())
		}
	}
}

// TestFacadeRadixAndSnapshot exercises the extension APIs end to end.
func TestFacadeRadixAndSnapshot(t *testing.T) {
	p, err := NewPool(PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Radix map.
	m, err := NewRadixMap(p, RadixMapConfig{Capacity: 100000})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for k := uint64(0); k < 100000; k += 17 {
		if err := m.Set(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 100000; k += 17 {
		if v, ok := m.Get(k); !ok || v != k*2 {
			t.Fatalf("radix Get(%d) = %d,%v", k, v, ok)
		}
	}

	// EH snapshot through the facade.
	src, err := NewExtendibleHashing(p, ExtendibleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10000; k++ {
		src.Insert(k, k+5)
	}
	var buf deferredBuffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := NewPool(PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	dst, err := RestoreExtendibleHashing(p2, ExtendibleConfig{}, buf.reader())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10000; k += 101 {
		if v, ok := dst.Lookup(k); !ok || v != k+5 {
			t.Fatalf("restored Lookup(%d) = %d,%v", k, v, ok)
		}
	}
}

// TestFacadeRewiring exercises the node-level public API end to end.
func TestFacadeRewiring(t *testing.T) {
	p, err := NewPool(PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	refs, err := p.AllocN(4)
	if err != nil {
		t.Fatal(err)
	}
	trad := NewTraditionalNode(p, 4)
	for i, r := range refs {
		p.Page(r)[0] = byte(i + 1)
		trad.Set(i, r)
	}
	sc, err := NewShortcutNode(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.SetFromTraditional(trad, true); err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if sc.Leaf(i)[0] != trad.Leaf(i)[0] {
			t.Fatalf("slot %d differs between access paths", i)
		}
	}
	// Shortcut-EH visibility through the facade types.
	if sc.Leaf(2)[0] != 3 {
		t.Fatal("leaf content wrong")
	}
}

package persist

import (
	"bytes"
	"errors"
	"testing"
)

// mapSource is a deterministic in-memory Source.
type mapSource struct {
	keys []uint64
	vals []uint64
	// lieLen makes Len misreport, to exercise the consistency check.
	lieLen int
}

func (m *mapSource) Len() int {
	if m.lieLen != 0 {
		return m.lieLen
	}
	return len(m.keys)
}

func (m *mapSource) Range(fn func(key, value uint64) bool) {
	for i, k := range m.keys {
		if !fn(k, m.vals[i]) {
			return
		}
	}
}

func sampleSource(n int) *mapSource {
	src := &mapSource{}
	for i := 0; i < n; i++ {
		src.keys = append(src.keys, uint64(i)*0x9E3779B9)
		src.vals = append(src.vals, uint64(i))
	}
	return src
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	// A size spanning several restore chunks, plus the empty edge case.
	for _, n := range []int{0, 1, chunkPairs - 1, chunkPairs, 3*chunkPairs + 17} {
		src := sampleSource(n)
		var buf bytes.Buffer
		if err := Snapshot(&buf, src); err != nil {
			t.Fatalf("n=%d: Snapshot: %v", n, err)
		}
		if count, err := Verify(bytes.NewReader(buf.Bytes())); err != nil || count != uint64(n) {
			t.Fatalf("n=%d: Verify = %d, %v", n, count, err)
		}
		var gotK, gotV []uint64
		count, err := Restore(bytes.NewReader(buf.Bytes()), func(k, v []uint64) error {
			gotK = append(gotK, k...)
			gotV = append(gotV, v...)
			return nil
		})
		if err != nil || count != uint64(n) {
			t.Fatalf("n=%d: Restore = %d, %v", n, count, err)
		}
		if len(gotK) != n {
			t.Fatalf("n=%d: restored %d pairs", n, len(gotK))
		}
		for i := range gotK {
			if gotK[i] != src.keys[i] || gotV[i] != src.vals[i] {
				t.Fatalf("n=%d: pair %d = (%d,%d), want (%d,%d)",
					n, i, gotK[i], gotV[i], src.keys[i], src.vals[i])
			}
		}
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Snapshot(&buf, sampleSource(100)); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Every single-byte flip must be caught — header, pairs, or trailer.
	for _, off := range []int{0, 8, 16, 17, len(blob) / 2, len(blob) - 5, len(blob) - 1} {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x01
		if _, err := Verify(bytes.NewReader(mut)); !errors.Is(err, ErrInvalid) {
			t.Fatalf("flip at %d: Verify = %v, want ErrInvalid", off, err)
		}
	}
	// Truncation at any point must be caught too.
	for _, cut := range []int{0, 7, 16, 30, len(blob) - 1} {
		if _, err := Verify(bytes.NewReader(blob[:cut])); !errors.Is(err, ErrInvalid) {
			t.Fatalf("cut at %d: Verify = %v, want ErrInvalid", cut, err)
		}
	}
}

func TestSnapshotDetectsInconsistentSource(t *testing.T) {
	src := sampleSource(10)
	src.lieLen = 12
	var buf bytes.Buffer
	if err := Snapshot(&buf, src); err == nil {
		t.Fatal("Snapshot accepted a source whose Len disagrees with Range")
	}
}

func TestRestoreApplyErrorPropagates(t *testing.T) {
	var buf bytes.Buffer
	if err := Snapshot(&buf, sampleSource(10)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := Restore(&buf, func(_, _ []uint64) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Restore = %v, want apply error", err)
	}
}

// Package persist is the durability subsystem's snapshot layer: a
// point-in-time serialization of any Range-capable store into a compact,
// CRC-checked stream, and the matching restore. A snapshot plus the WAL
// tail after it (package wal) reconstructs the exact keyspace; taking one
// lets the log be compacted.
//
// Stream layout (all integers little-endian):
//
//	u64 magic     format identifier and version
//	u64 count     number of (key, value) pairs
//	count × (u64 key, u64 value)
//	u32 crc       IEEE CRC32 of everything before it (magic included)
//
// The trailing CRC makes validity a property of the whole file, so
// recovery can distinguish "newest valid snapshot" from a partially
// written or bit-rotted one before applying a single pair.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies and versions the snapshot stream format.
const Magic = uint64(0x5643_534E_4150_0001) // "VCSNAP" v1

// ErrInvalid reports a stream that is not a complete, intact snapshot.
var ErrInvalid = errors.New("persist: invalid snapshot")

// chunkPairs is the batch size Restore hands to its apply callback.
const chunkPairs = 4096

// Source is what Snapshot serializes: the Range iteration plus the entry
// count for the header. vmshortcut.Store satisfies it.
type Source interface {
	Len() int
	Range(fn func(key, value uint64) bool)
}

// Snapshot writes a point-in-time serialization of src to w. The source
// must not be mutated concurrently: the count is taken once and the pairs
// streamed from one Range pass, and a mismatch between the two fails the
// write rather than producing a silently short snapshot.
func Snapshot(w io.Writer, src Source) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	count := uint64(src.Len())
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], Magic)
	binary.LittleEndian.PutUint64(hdr[8:], count)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: snapshot header: %w", err)
	}
	var (
		written uint64
		pair    [16]byte
		werr    error
	)
	src.Range(func(k, v uint64) bool {
		binary.LittleEndian.PutUint64(pair[0:], k)
		binary.LittleEndian.PutUint64(pair[8:], v)
		if _, err := bw.Write(pair[:]); err != nil {
			werr = err
			return false
		}
		written++
		return true
	})
	if werr != nil {
		return fmt.Errorf("persist: snapshot pair: %w", werr)
	}
	if written != count {
		return fmt.Errorf("persist: source changed during snapshot: Len reported %d pairs, Range yielded %d",
			count, written)
	}
	// Flush before reading the digest: the CRC only sees flushed bytes,
	// and the trailer itself must stay outside it — so it bypasses the
	// MultiWriter and goes straight to w.
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("persist: snapshot flush: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("persist: snapshot trailer: %w", err)
	}
	return nil
}

// Restore reads a snapshot from r, handing the pairs to apply in chunks.
// The header is validated before the first apply call and the CRC after
// the last, so a truncated or corrupt stream fails with ErrInvalid —
// possibly after some chunks were applied; use Verify first when the
// target cannot tolerate a partial restore. It returns the pair count.
func Restore(r io.Reader, apply func(keys, values []uint64) error) (uint64, error) {
	return scan(r, apply)
}

// Verify reads the whole stream and checks its structure and CRC without
// retaining any data. Recovery uses it to pick the newest valid snapshot
// before mutating anything.
func Verify(r io.Reader) (uint64, error) {
	return scan(r, nil)
}

// scan drives one pass over a snapshot stream. The CRC is fed exactly the
// bytes consumed as header and pairs — the trailer is read separately —
// so the digest matches what Snapshot computed, byte for byte.
func scan(r io.Reader, apply func(keys, values []uint64) error) (uint64, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short header: %v", ErrInvalid, err)
	}
	crc.Write(hdr[:])
	if m := binary.LittleEndian.Uint64(hdr[0:]); m != Magic {
		return 0, fmt.Errorf("%w: bad magic %#x", ErrInvalid, m)
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	var (
		keys = make([]uint64, 0, chunkPairs)
		vals = make([]uint64, 0, chunkPairs)
		buf  = make([]byte, chunkPairs*16)
	)
	for read := uint64(0); read < count; {
		n := count - read
		if n > chunkPairs {
			n = chunkPairs
		}
		chunk := buf[:n*16]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return 0, fmt.Errorf("%w: truncated at pair %d of %d: %v", ErrInvalid, read, count, err)
		}
		crc.Write(chunk)
		read += n
		if apply == nil {
			continue
		}
		keys, vals = keys[:0], vals[:0]
		for i := uint64(0); i < n; i++ {
			keys = append(keys, binary.LittleEndian.Uint64(chunk[16*i:]))
			vals = append(vals, binary.LittleEndian.Uint64(chunk[16*i+8:]))
		}
		if err := apply(keys, vals); err != nil {
			return 0, fmt.Errorf("persist: applying restored pairs: %w", err)
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return 0, fmt.Errorf("%w: missing CRC trailer: %v", ErrInvalid, err)
	}
	if got, want := binary.LittleEndian.Uint32(trailer[:]), crc.Sum32(); got != want {
		return 0, fmt.Errorf("%w: CRC mismatch: stream %#x, computed %#x", ErrInvalid, got, want)
	}
	return count, nil
}

package persist_test

import (
	"bytes"
	"testing"

	"vmshortcut"
	"vmshortcut/persist"
)

// TestSnapshotCrossKindPortability pins that a snapshot is a property of
// the KEYSPACE, not of the index that produced it: a stream written from
// one store kind restores into any other kind with identical contents.
// This is what lets an operator change index implementations (or a
// replica run a different kind than its primary) across a snapshot
// boundary without a migration step.
func TestSnapshotCrossKindPortability(t *testing.T) {
	// Keys must fit every kind's constraints; KindRadix bounds the key
	// space by its capacity, so keep keys below it.
	const capacity = 1 << 16
	keys := make([]uint64, 0, 1000)
	vals := make([]uint64, 0, 1000)
	for i := uint64(0); i < 1000; i++ {
		keys = append(keys, (i*7919)%capacity)
		vals = append(vals, i^0xBEEF)
	}
	// %capacity can collide; keep last-write-wins expectations explicit.
	want := make(map[uint64]uint64, len(keys))
	for i, k := range keys {
		want[k] = vals[i]
	}

	kinds := vmshortcut.Kinds()
	snaps := make(map[vmshortcut.Kind][]byte, len(kinds))
	for _, kind := range kinds {
		src, err := vmshortcut.Open(kind, vmshortcut.WithCapacity(capacity))
		if err != nil {
			t.Fatalf("%v: Open: %v", kind, err)
		}
		if err := src.InsertBatch(keys, vals); err != nil {
			t.Fatalf("%v: InsertBatch: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := persist.Snapshot(&buf, src); err != nil {
			t.Fatalf("%v: Snapshot: %v", kind, err)
		}
		snaps[kind] = buf.Bytes()
		if err := src.Close(); err != nil {
			t.Fatalf("%v: Close: %v", kind, err)
		}
	}

	// Every snapshot restores into every kind — including itself — with
	// the same contents.
	for _, from := range kinds {
		for _, to := range kinds {
			dst, err := vmshortcut.Open(to, vmshortcut.WithCapacity(capacity))
			if err != nil {
				t.Fatalf("%v→%v: Open: %v", from, to, err)
			}
			n, err := persist.Restore(bytes.NewReader(snaps[from]), dst.InsertBatch)
			if err != nil {
				t.Fatalf("%v→%v: Restore: %v", from, to, err)
			}
			if int(n) != len(want) || dst.Len() != len(want) {
				t.Fatalf("%v→%v: restored %d pairs, store holds %d, want %d",
					from, to, n, dst.Len(), len(want))
			}
			for k, v := range want {
				got, ok := dst.Lookup(k)
				if !ok || got != v {
					t.Fatalf("%v→%v: key %d = (%d,%v), want (%d,true)", from, to, k, got, ok, v)
				}
			}
			if err := dst.Close(); err != nil {
				t.Fatalf("%v→%v: Close: %v", from, to, err)
			}
		}
	}
}

package persist_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"vmshortcut/persist"
)

// FuzzRestore feeds arbitrary bytes to the snapshot reader and pins the
// recovery contract: no input may panic, and Verify and Restore must
// agree — recovery runs Verify first and only then Restores, so a stream
// Verify accepts must Restore cleanly with the same pair count (no
// partial state), and one Verify rejects must fail Restore identically.
func FuzzRestore(f *testing.F) {
	// Seeds: a valid empty snapshot, a valid two-pair snapshot, and
	// mutations recovery must reject — truncation, bad magic, bad CRC,
	// a count pointing past the data, and assorted garbage.
	var empty bytes.Buffer
	if err := persist.Snapshot(&empty, pairSource(nil)); err != nil {
		f.Fatal(err)
	}
	var two bytes.Buffer
	if err := persist.Snapshot(&two, pairSource([][2]uint64{{1, 10}, {2, 20}})); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add(two.Bytes())
	f.Add(two.Bytes()[:len(two.Bytes())-1]) // truncated trailer
	f.Add(two.Bytes()[:17])                 // truncated mid-pair
	badMagic := bytes.Clone(two.Bytes())
	badMagic[0] ^= 0xFF
	f.Add(badMagic)
	badCRC := bytes.Clone(two.Bytes())
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(badCRC)
	hugeCount := bytes.Clone(empty.Bytes())
	binary.LittleEndian.PutUint64(hugeCount[8:], 1<<60)
	f.Add(hugeCount)
	f.Add([]byte{})
	f.Add([]byte("not a snapshot at all, just some text"))

	f.Fuzz(func(t *testing.T, data []byte) {
		vn, verr := persist.Verify(bytes.NewReader(data))

		var restored [][2]uint64
		rn, rerr := persist.Restore(bytes.NewReader(data), func(keys, values []uint64) error {
			for i := range keys {
				restored = append(restored, [2]uint64{keys[i], values[i]})
			}
			return nil
		})

		if (verr == nil) != (rerr == nil) {
			t.Fatalf("Verify and Restore disagree: verify err %v, restore err %v", verr, rerr)
		}
		if verr != nil {
			if !errors.Is(verr, persist.ErrInvalid) {
				t.Fatalf("rejection not tagged ErrInvalid: %v", verr)
			}
			if !errors.Is(rerr, persist.ErrInvalid) {
				t.Fatalf("restore rejection not tagged ErrInvalid: %v", rerr)
			}
			return
		}
		if vn != rn {
			t.Fatalf("pair count disagreement: Verify %d, Restore %d", vn, rn)
		}
		if uint64(len(restored)) != rn {
			t.Fatalf("Restore reported %d pairs but applied %d", rn, len(restored))
		}

		// A stream both accept must round-trip: re-snapshotting the
		// restored pairs in order reproduces the accepted prefix of the
		// input byte for byte (trailing junk past the CRC is ignored by
		// the reader, so compare only the snapshot's own length).
		var rewritten bytes.Buffer
		if err := persist.Snapshot(&rewritten, pairSource(restored)); err != nil {
			t.Fatal(err)
		}
		if n := rewritten.Len(); !bytes.Equal(data[:n], rewritten.Bytes()) {
			t.Fatalf("accepted stream did not round-trip:\n in  %x\n out %x", data[:n], rewritten.Bytes())
		}
	})
}

// pairSource adapts an ordered pair slice to the Snapshot Source.
type pairSource [][2]uint64

func (p pairSource) Len() int { return len(p) }
func (p pairSource) Range(fn func(key, value uint64) bool) {
	for _, kv := range p {
		if !fn(kv[0], kv[1]) {
			return
		}
	}
}

// TestSnapshotZeroPairs pins the empty-store round trip: header + CRC
// only, Verify accepts it, and Restore returns zero pairs without ever
// invoking apply — an empty store's snapshot must not fabricate state.
func TestSnapshotZeroPairs(t *testing.T) {
	var buf bytes.Buffer
	if err := persist.Snapshot(&buf, pairSource(nil)); err != nil {
		t.Fatal(err)
	}
	if want := 16 + 4; buf.Len() != want {
		t.Fatalf("empty snapshot is %d bytes, want %d (header + CRC)", buf.Len(), want)
	}
	if n, err := persist.Verify(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("Verify(empty) = %d, %v", n, err)
	}
	calls := 0
	n, err := persist.Restore(bytes.NewReader(buf.Bytes()), func(keys, values []uint64) error {
		calls++
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("Restore(empty) = %d, %v", n, err)
	}
	if calls != 0 {
		t.Fatalf("Restore of an empty snapshot invoked apply %d times", calls)
	}
}

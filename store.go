package vmshortcut

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut/internal/ch"
	"vmshortcut/internal/eh"
	"vmshortcut/internal/ht"
	"vmshortcut/internal/hti"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/op"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/radix"
	"vmshortcut/internal/sceh"
)

// OpBatch is the serving stack's shared operation-batch representation
// (internal/op.Batch): an ordered mix of GET/PUT/DEL entries over
// contiguous storage. One OpBatch travels from the wire decode through
// the coalescer and the shard fan-out down to the WAL append without
// being re-packed. Build one with its Get/Put/Del methods, or let the
// wire layer decode a frame into it.
type OpBatch = op.Batch

// OpResults holds per-entry outcomes of an applied OpBatch
// (internal/op.Results): Found per entry, plus the value for GET hits.
type OpResults = op.Results

// Kind selects the index implementation behind Open.
type Kind int

const (
	// KindHT is the open-addressing hash table with a full doubling rehash.
	KindHT Kind = iota
	// KindHTI is the Redis-style incrementally rehashing table.
	KindHTI
	// KindCH is chained hashing over a fixed-size directory.
	KindCH
	// KindEH is classical extendible hashing over pool pages.
	KindEH
	// KindShortcutEH is the paper's contribution: extendible hashing whose
	// directory is additionally expressed as a page-table shortcut.
	KindShortcutEH
	// KindRadix is the sparse direct-mapped shortcut index over a bounded
	// key space; it requires WithCapacity.
	KindRadix

	kindCount
)

var kindNames = [...]string{"ht", "hti", "ch", "eh", "shortcut-eh", "radix"}

// String returns the kind's canonical flag-style name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists every openable kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, kindCount)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKind maps a flag-style name ("ht", "hti", "ch", "eh", "shortcut-eh",
// "radix") onto its Kind.
func ParseKind(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("vmshortcut: unknown index kind %q", name)
}

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("vmshortcut: store closed")

// Store is the uniform surface of every index kind: the Index operations,
// batch variants that amortize per-call overhead, one observability struct,
// and an idempotent lifecycle. Open is the only constructor.
//
// Unless the Store was opened with WithConcurrency, mutations must come
// from a single goroutine, mirroring the paper's single-writer model.
type Store interface {
	Index

	// InsertBatch upserts every (keys[i], values[i]) pair; len(keys) must
	// equal len(values).
	InsertBatch(keys, values []uint64) error
	// LookupBatch looks up every key, writing values into out — which must
	// have length at least len(keys) — and returns per-key presence.
	LookupBatch(keys []uint64, out []uint64) []bool
	// DeleteBatch removes every key and returns per-key presence, so the
	// delete path is symmetric with insert/lookup for batch-shaped callers
	// (the network server's pipelined DEL path).
	DeleteBatch(keys []uint64) []bool

	// ApplyBatch executes an ordered mixed-operation batch — the serving
	// stack's one shared representation (OpBatch) — writing per-entry
	// outcomes into res (sized and zeroed by the call): presence and
	// value for GET entries, presence for DEL entries, acceptance for PUT
	// entries. Entries are applied in order (maximal same-kind runs go
	// through the native batch paths, so a uniform batch is exactly an
	// InsertBatch/LookupBatch/DeleteBatch — and counts in the same Stats
	// counters), a concurrent store takes its lock once for the whole
	// batch, a sharded store splits the batch per shard in one pass, and
	// a durable store appends ONE log record for the whole batch,
	// zero-copy from the batch's wire payload.
	//
	// A mixed batch fails as a unit: a non-nil error (a rejected insert,
	// a closed store, a log append failure) means the caller must treat
	// every entry as failed and acknowledge none of them — on a durable
	// store, entries may then have taken effect in memory without being
	// logged, exactly the unacknowledged one-batch window the WAL's
	// fail-stop contract already documents. Batches larger than
	// wal.MaxRecordPairs may be rejected by durable stores; the wire
	// layer's frame bounds keep served batches far below that.
	ApplyBatch(b *OpBatch, res *OpResults) error

	// Range calls fn for every stored (key, value) entry until fn returns
	// false. Iteration order is unspecified (KindRadix iterates in key
	// order; the hash kinds do not). fn must not mutate the store. Range
	// is a read: on a WithConcurrency store it holds the read lock for the
	// whole iteration, and on other stores it must not race mutations —
	// the snapshot layer (package persist) is its primary consumer.
	Range(fn func(key, value uint64) bool)

	// Stats snapshots the store's observability counters. Fields that do
	// not apply to the kind are zero-valued.
	Stats() Stats
	// WaitSync blocks until asynchronously maintained state (the shortcut
	// directory of KindShortcutEH) has caught up, or the timeout elapses.
	// Kinds without asynchronous maintenance are always in sync.
	WaitSync(timeout time.Duration) bool
	// Kind reports which implementation backs the store.
	Kind() Kind
	// Close releases the index and any pool Open created for it. It is
	// idempotent; operations after Close fail with ErrClosed (or report
	// "not found" where the signature has no error).
	Close() error
}

// Stats is the common observability struct of all kinds. Directory fields
// are populated for the EH-backed kinds (and, reinterpreted, for
// KindRadix); shortcut fields only for KindShortcutEH. Everything else is
// zero-valued, per kind, by design.
type Stats struct {
	Kind    Kind
	Entries int

	// Directory shape (KindEH, KindShortcutEH; for KindRadix
	// DirectorySlots is the inner node's fan-out and Buckets the live leaf
	// count; for KindCH DirectorySlots is the slot array and Buckets the
	// overflow-bucket count).
	GlobalDepth    uint
	DirectorySlots int
	Buckets        int
	LoadFactor     float64
	AvgFanIn       float64
	// StructuralMods counts structure-changing events: splits + doublings
	// (+ merges + halvings) for the EH kinds, rehashes for KindHT, resizes
	// for KindHTI, leaf allocations + frees for KindRadix.
	StructuralMods uint64

	// Shortcut maintenance and routing (KindShortcutEH only).
	ShortcutLookups    uint64
	TraditionalLookups uint64
	UpdatesApplied     uint64
	CreatesApplied     uint64
	UpdatesSuperseded  uint64
	Remaps             uint64
	TradVersion        uint64
	ShortcutVersion    uint64
	InSync             bool
	UsingShortcut      bool

	// Durability (stores opened with WithWAL; zero otherwise). WALRecords
	// and WALSyncs count appended log records and fsync calls, WALSegments
	// and WALBytes describe the live log, SnapshotLSN is the newest
	// snapshot's covered position, and DurableLSN is the highest log
	// position known to be on stable storage.
	WALRecords  uint64
	WALSyncs    uint64
	WALSegments int
	WALBytes    int64
	SnapshotLSN uint64
	DurableLSN  uint64

	// Batch-operation counters at the Store surface (every kind): how many
	// InsertBatch/LookupBatch/DeleteBatch calls this store has served. A
	// sharded store counts each caller-facing batch once — the per-shard
	// sub-batches of the fan-out are not double counted. The network
	// server's coalescer is verified through these: pipelined requests must
	// reach the store as batches, not single ops.
	InsertBatches uint64
	LookupBatches uint64
	DeleteBatches uint64

	// Read fast path (WithConcurrency stores; summed across shards). The
	// three Fastpath counters partition GET entries by how they were
	// served: from the hot-key cache (WithReadCache), by a
	// seqlock-validated lock-free read, or under the read lock.
	// CacheMisses counts cache probes that fell through; the cache hit
	// rate is FastpathCacheReads / (FastpathCacheReads + CacheMisses).
	// SeqlockRetries counts optimistic passes discarded because a writer
	// moved the sequence counter mid-read; SeqlockFallbacks counts
	// batches that exhausted their retries and took the lock.
	FastpathCacheReads   uint64
	FastpathSeqlockReads uint64
	FastpathLockedReads  uint64
	CacheMisses          uint64
	SeqlockRetries       uint64
	SeqlockFallbacks     uint64
}

// storeOptions collects the functional options; zero values defer to each
// implementation's defaults.
type storeOptions struct {
	err error // first invalid option, reported by Open

	pool            *Pool
	poolCfg         PoolConfig
	capacity        int
	maxLoadFactor   float64
	tableBytes      int
	migrationBatch  int
	initialGD       uint
	initialGDSet    bool
	mergeLoadFactor float64
	pollInterval    time.Duration
	fanInThreshold  float64
	adaptiveRouting bool
	synchronous     bool
	disableShortcut bool
	concurrent      bool
	shards          int
	readCache       bool
	seqlockHist     *obs.Hist

	// Durability (durable.go): set via WithWAL and friends; ignored
	// entirely when walDir is empty.
	walDir          string
	fsyncMode       FsyncMode
	fsyncInterval   time.Duration
	snapshotEvery   int
	walSegmentBytes int64
	chainedWAL      bool
	fsyncHist       *obs.Hist
	lsnTraces       *obs.LSNTraces
}

// Option configures Open. Options that do not apply to the chosen kind are
// ignored, so one option set can drive a sweep over several kinds.
type Option func(*storeOptions)

func (o *storeOptions) fail(format string, args ...any) {
	if o.err == nil {
		o.err = fmt.Errorf(format, args...)
	}
}

// WithPool injects the physical page pool backing the index (KindEH,
// KindShortcutEH, KindRadix). The caller keeps ownership: Close does not
// close an injected pool. Without this option, Open creates and owns a
// pool whenever the kind needs one.
func WithPool(p *Pool) Option {
	return func(o *storeOptions) {
		if p == nil {
			o.fail("vmshortcut: WithPool(nil)")
			return
		}
		o.pool = p
	}
}

// WithPoolConfig tunes the pool Open auto-creates. Ignored when WithPool
// injects one.
func WithPoolConfig(cfg PoolConfig) Option {
	return func(o *storeOptions) { o.poolCfg = cfg }
}

// WithCapacity pre-sizes the index for n entries, like make(map, n):
// initial table bytes for KindHT/KindHTI, directory bytes for KindCH,
// initial global depth for the EH kinds, and the auto-created pool's page
// budget. For KindRadix, n is the exclusive key-space bound and is
// required.
func WithCapacity(n int) Option {
	return func(o *storeOptions) {
		if n <= 0 {
			o.fail("vmshortcut: WithCapacity(%d): must be positive", n)
			return
		}
		o.capacity = n
	}
}

// WithMaxLoadFactor sets the occupancy threshold that triggers growth
// (KindHT, KindHTI) or bucket splits (KindEH, KindShortcutEH). Default
// 0.35, the paper's parameter.
func WithMaxLoadFactor(f float64) Option {
	return func(o *storeOptions) {
		if f <= 0 || f >= 1 {
			o.fail("vmshortcut: WithMaxLoadFactor(%v): need 0 < f < 1", f)
			return
		}
		o.maxLoadFactor = f
	}
}

// WithTableBytes fixes KindCH's directory size (the paper grants CH 1 GB).
func WithTableBytes(n int) Option {
	return func(o *storeOptions) {
		if n <= 0 {
			o.fail("vmshortcut: WithTableBytes(%d): must be positive", n)
			return
		}
		o.tableBytes = n
	}
}

// WithMigrationBatch sets how many entries KindHTI migrates per access
// while a resize is in progress. Default 64.
func WithMigrationBatch(n int) Option {
	return func(o *storeOptions) {
		if n <= 0 {
			o.fail("vmshortcut: WithMigrationBatch(%d): must be positive", n)
			return
		}
		o.migrationBatch = n
	}
}

// WithInitialGlobalDepth pre-sizes the EH directory (KindEH,
// KindShortcutEH); it takes precedence over the depth WithCapacity derives.
func WithInitialGlobalDepth(d uint) Option {
	return func(o *storeOptions) {
		o.initialGD = d
		o.initialGDSet = true
	}
}

// WithMergeLoadFactor enables bucket coalescing on delete for the EH kinds
// (0, the default, matches the paper's no-merge prototype).
func WithMergeLoadFactor(f float64) Option {
	return func(o *storeOptions) {
		if f < 0 || f >= 1 {
			o.fail("vmshortcut: WithMergeLoadFactor(%v): need 0 <= f < 1", f)
			return
		}
		o.mergeLoadFactor = f
	}
}

// WithPollInterval sets the mapper thread's queue polling frequency
// (KindShortcutEH). Default DefaultPollInterval (25ms, paper §4.1).
func WithPollInterval(d time.Duration) Option {
	return func(o *storeOptions) {
		if d <= 0 {
			o.fail("vmshortcut: WithPollInterval(%v): must be positive", d)
			return
		}
		o.pollInterval = d
	}
}

// WithFanInThreshold routes KindShortcutEH lookups through the shortcut
// only while the average directory fan-in is at most f. Default 8.
func WithFanInThreshold(f float64) Option {
	return func(o *storeOptions) {
		if f <= 0 {
			o.fail("vmshortcut: WithFanInThreshold(%v): must be positive", f)
			return
		}
		o.fanInThreshold = f
	}
}

// WithAdaptiveRouting replaces KindShortcutEH's fixed fan-in threshold
// with online measurement of both access paths.
func WithAdaptiveRouting(on bool) Option {
	return func(o *storeOptions) { o.adaptiveRouting = on }
}

// WithSynchronousMaintenance applies KindShortcutEH's shortcut maintenance
// on the writer goroutine instead of the mapper thread (ablations only).
func WithSynchronousMaintenance(on bool) Option {
	return func(o *storeOptions) { o.synchronous = on }
}

// WithDisableShortcut routes every read through the traditional pointer
// path (KindShortcutEH, KindRadix; ablations and baselines).
func WithDisableShortcut(on bool) Option {
	return func(o *storeOptions) { o.disableShortcut = on }
}

// WithConcurrency makes the store safe for concurrent use, including a
// Close racing in-flight operations: a readers-writer lock admits parallel
// lookups (exclusive mutation) for every kind whose reads are pure;
// KindHTI's reads migrate entries and therefore serialize fully.
//
// One lock still serializes all writers. To scale mutation across cores,
// combine with WithShards: the keyspace is then hash-partitioned across
// independent sub-stores and the single lock becomes one stripe per shard.
func WithConcurrency(on bool) Option {
	return func(o *storeOptions) { o.concurrent = on }
}

// WithReadCache fronts the pure-GET path of a concurrency-safe store
// with a small per-shard hot-key cache: fixed arrays of atomics, so a
// hit is lock-free and allocation-free, invalidated as a whole by any
// write to the shard (the slots are stamped with the shard's write
// sequence counter), with sketch-gated admission so only repeatedly
// read keys occupy slots. It needs WithConcurrency or WithShards to
// have a fast path to front, and is ignored — like every inapplicable
// option — without one of them, and for KindHTI, whose reads mutate.
func WithReadCache(on bool) Option {
	return func(o *storeOptions) { o.readCache = on }
}

// WithSeqlockRetryHist records, for every optimistic pure-GET read that
// succeeded, how many seqlock validation retries it needed (0 = clean
// first pass). Applies to WithConcurrency stores on read-safe kinds; a
// sharded store records every shard into the same histogram.
func WithSeqlockRetryHist(h *obs.Hist) Option {
	return func(o *storeOptions) { o.seqlockHist = h }
}

// WithShards hash-partitions the keyspace across n independent sub-stores,
// each with its own lock stripe and (unless WithPool injects a shared one)
// its own page pool, so writers to different shards proceed in parallel
// instead of serializing on WithConcurrency's single lock. Single
// operations route by key hash; InsertBatch/LookupBatch split the batch by
// shard and fan the per-shard sub-batches out across goroutines, so
// Shortcut-EH's once-per-batch routing decision is preserved per shard.
// Stats aggregates across shards, WaitSync and Close fan out and drain.
//
// n > 1 implies WithConcurrency: the sharded store is always safe for
// concurrent use. n = 1 (the default) keeps today's single-store
// semantics. Explicit size budgets — WithCapacity, WithTableBytes,
// WithPoolConfig's page counts, WithInitialGlobalDepth's pre-sized
// directory — are divided across the shards so the total stays what was
// asked for; the exception is KindRadix, where WithCapacity bounds the
// keyspace and every shard keeps the full bound.
func WithShards(n int) Option {
	return func(o *storeOptions) {
		if n <= 0 {
			o.fail("vmshortcut: WithShards(%d): must be positive", n)
			return
		}
		o.shards = n
	}
}

// closedFalse backs the all-false presence results a closed store hands
// out of LookupBatch/DeleteBatch. The results are immutable by contract
// (nothing was looked up or deleted), so one shared read-only arena
// replaces the former make([]bool, n) per call; a batch larger than the
// arena — far beyond any coalesced frame — still allocates.
var closedFalse [4096]bool

// zeroFound returns an all-false []bool of length n, allocation-free
// for any batch the serve path produces. Callers must treat the result
// as read-only.
func zeroFound(n int) []bool {
	if n <= len(closedFalse) {
		return closedFalse[:n:n]
	}
	return make([]bool, n)
}

// batchIndex is the contract every internal index implementation satisfies
// natively; the store wrapper adds lifecycle and observability on top.
type batchIndex interface {
	Index
	InsertBatch(keys, values []uint64) error
	LookupBatch(keys []uint64, out []uint64) []bool
	DeleteBatch(keys []uint64) []bool
	Range(fn func(key, value uint64) bool)
}

// applyRuns executes a mixed batch against an index as maximal same-kind
// runs, in entry order: each run becomes one native batch call (one
// routing decision, per the paper's amortization), and a single-entry
// run uses the single-op path so a lone pipelined request costs what it
// did before batching existed. Results land at the entries' caller-order
// positions. It returns how many multi-entry runs of each kind ran (the
// store's batch counters count exactly those, keeping their meaning from
// the same-kind era) and the first insert error; later runs still
// execute, but per the ApplyBatch contract the whole batch then fails as
// a unit.
func applyRuns(idx batchIndex, b *op.Batch, res *op.Results) (runs [3]uint64, firstErr error) {
	kinds, keys, vals := b.Kinds(), b.Keys(), b.Vals()
	res.Reset(len(kinds))
	runs = op.CountRuns(kinds) // the one shared "what counts as a batch" definition
	for i := 0; i < len(kinds); {
		j := i + 1
		for j < len(kinds) && kinds[j] == kinds[i] {
			j++
		}
		switch kinds[i] {
		case op.Get:
			if j-i == 1 {
				res.Vals[i], res.Found[i] = idx.Lookup(keys[i])
			} else {
				copy(res.Found[i:j], idx.LookupBatch(keys[i:j], res.Vals[i:j]))
			}
		case op.Put:
			var err error
			if j-i == 1 {
				err = idx.Insert(keys[i], vals[i])
			} else {
				err = idx.InsertBatch(keys[i:j], vals[i:j])
			}
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				for k := i; k < j; k++ {
					res.Found[k] = true
				}
			}
		case op.Del:
			if j-i == 1 {
				res.Found[i] = idx.Delete(keys[i])
			} else {
				copy(res.Found[i:j], idx.DeleteBatch(keys[i:j]))
			}
		}
		i = j
	}
	return runs, firstErr
}

// effectiveLoadFactor mirrors the 0.35 default every implementation fills
// in, so capacity pre-sizing agrees with the table it sizes.
func (o *storeOptions) effectiveLoadFactor() float64 {
	if o.maxLoadFactor > 0 {
		return o.maxLoadFactor
	}
	return 0.35
}

// openBytes sizes an open-addressing table (16-byte slots) so capacity
// entries fit without a rehash.
func (o *storeOptions) openBytes() int {
	if o.capacity <= 0 {
		return 0
	}
	slots := int(float64(o.capacity)/o.effectiveLoadFactor()) + 1
	return slots * 16
}

// ehConfig assembles the extendible-hashing config shared by KindEH and
// KindShortcutEH.
func (o *storeOptions) ehConfig() eh.Config {
	cfg := eh.Config{
		MaxLoadFactor:   o.maxLoadFactor,
		MergeLoadFactor: o.mergeLoadFactor,
	}
	switch {
	case o.initialGDSet:
		cfg.InitialGlobalDepth = o.initialGD
	case o.capacity > 0:
		// Buckets needed at the split threshold, rounded up to a power of
		// two of directory slots (255 entry slots per 4 KB bucket).
		maxFill := int(o.effectiveLoadFactor() * 255)
		if maxFill < 1 {
			maxFill = 1
		}
		buckets := (o.capacity + maxFill - 1) / maxFill
		for cfg.InitialGlobalDepth = 0; 1<<cfg.InitialGlobalDepth < buckets; cfg.InitialGlobalDepth++ {
		}
	}
	return cfg
}

// autoPool creates the pool Open owns when none was injected, sized from
// the capacity hint when one was given.
func (o *storeOptions) autoPool() (*Pool, error) {
	cfg := o.poolCfg
	if o.capacity > 0 && cfg.MaxPages == 0 {
		// ≈ capacity/32 pages of buckets at the 0.35 load factor, with
		// headroom for splits in flight and shortcut areas.
		pages := o.capacity/32 + (1 << 12)
		cfg.MaxPages = pages * 4
		if cfg.GrowChunkPages == 0 {
			cfg.GrowChunkPages = 1 << 10
		}
	}
	return pool.New(cfg)
}

// Open constructs the index kind behind the uniform Store surface. A pool
// is created and owned by the store when the kind needs one and WithPool
// did not inject it, so Open(KindShortcutEH) works with no further setup.
// WithShards(n) with n > 1 returns a sharded store: n independent
// sub-stores with the keyspace hash-partitioned across them.
//
// The old per-kind constructors (NewHashTable, NewExtendibleHashing,
// NewShortcutEH, ...) remain as deprecated wrappers around the same
// implementations.
func Open(kind Kind, opts ...Option) (Store, error) {
	var o storeOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	if o.err != nil {
		return nil, o.err
	}
	if kind < 0 || kind >= kindCount {
		return nil, fmt.Errorf("vmshortcut: unknown index kind %d", int(kind))
	}
	var (
		base Store
		err  error
	)
	if o.shards > 1 {
		base, err = openSharded(kind, &o)
	} else {
		base, err = openStore(kind, &o)
	}
	if err != nil {
		return nil, err
	}
	if o.walDir != "" {
		// WithWAL: recover the keyspace from disk into the fresh store,
		// then serve through the durable wrapper.
		return openDurable(base, &o)
	}
	return base, nil
}

// openStore builds one (unsharded) store from validated options — the
// construction path of every shard and of an Open without WithShards.
func openStore(kind Kind, o *storeOptions) (*store, error) {
	s := &store{kind: kind}

	// Acquire the page pool for the kinds that allocate from one.
	switch kind {
	case KindEH, KindShortcutEH, KindRadix:
		if o.pool != nil {
			s.pool = o.pool
		} else {
			p, err := o.autoPool()
			if err != nil {
				return nil, fmt.Errorf("vmshortcut: opening %s: %w", kind, err)
			}
			s.pool = p
			s.ownsPool = true
		}
	}
	// On any construction failure below, give back what Open created.
	fail := func(err error) (*store, error) {
		if s.ownsPool {
			s.pool.Close()
		}
		return nil, fmt.Errorf("vmshortcut: opening %s: %w", kind, err)
	}

	switch kind {
	case KindHT:
		t := ht.New(ht.Config{MaxLoadFactor: o.maxLoadFactor, InitialBytes: o.openBytes()})
		s.idx = t
		s.stats = func() Stats {
			return Stats{
				Kind:           KindHT,
				Entries:        t.Len(),
				DirectorySlots: t.Slots(),
				LoadFactor:     float64(t.Len()) / float64(t.Slots()),
				StructuralMods: uint64(t.Rehashes),
			}
		}

	case KindHTI:
		t := hti.New(hti.Config{
			MaxLoadFactor:  o.maxLoadFactor,
			InitialBytes:   o.openBytes(),
			MigrationBatch: o.migrationBatch,
		})
		s.idx = t
		s.stats = func() Stats {
			return Stats{Kind: KindHTI, Entries: t.Len(), StructuralMods: uint64(t.Resizes)}
		}

	case KindCH:
		bytes := o.tableBytes
		if bytes == 0 && o.capacity > 0 {
			// The paper's 1 GB : 100M ratio — 10 bytes of directory per
			// expected entry.
			bytes = o.capacity * 10
		}
		t := ch.New(ch.Config{TableBytes: bytes})
		s.idx = t
		s.stats = func() Stats {
			return Stats{
				Kind:           KindCH,
				Entries:        t.Len(),
				DirectorySlots: t.Slots(),
				Buckets:        t.ChainedBuckets,
				LoadFactor:     float64(t.Len()) / float64(t.Slots()),
			}
		}

	case KindEH:
		t, err := eh.New(s.pool, o.ehConfig())
		if err != nil {
			return fail(err)
		}
		if o.mergeLoadFactor > 0 {
			s.idx = mergingEH{t}
		} else {
			s.idx = t
		}
		s.under = t
		s.stats = func() Stats {
			st := ehShapeStats(t.Stats())
			st.Kind = KindEH
			return st
		}

	case KindShortcutEH:
		cfg := sceh.Config{
			EH:              o.ehConfig(),
			PollInterval:    o.pollInterval,
			FanInThreshold:  o.fanInThreshold,
			AdaptiveRouting: o.adaptiveRouting,
			Synchronous:     o.synchronous,
			DisableShortcut: o.disableShortcut,
		}
		t, err := sceh.New(s.pool, cfg)
		if err != nil {
			return fail(err)
		}
		s.idx = t
		s.under = t
		s.closeInner = t.Close
		s.waitSync = t.WaitSync
		s.stats = func() Stats {
			st := ehShapeStats(t.EH().Stats())
			scehStats(&st, t, t.Stats())
			return st
		}

	case KindRadix:
		if o.capacity <= 0 {
			return fail(errors.New("radix requires WithCapacity (the exclusive key-space bound)"))
		}
		m, err := radix.New(s.pool, radix.Config{
			Capacity:        uint64(o.capacity),
			DisableShortcut: o.disableShortcut,
		})
		if err != nil {
			return fail(err)
		}
		s.idx = m
		s.under = m
		s.closeInner = m.Close
		s.stats = func() Stats {
			return Stats{
				Kind:           KindRadix,
				Entries:        m.Len(),
				DirectorySlots: m.Slots(),
				Buckets:        m.LeafAllocs - m.LeafFrees,
				StructuralMods: uint64(m.LeafAllocs + m.LeafFrees),
			}
		}
	}

	// Concurrency: every kind shares one readers-writer wrapper that also
	// owns the closed flag, so Close drains in-flight operations before
	// releasing the underlying memory. Reads stay parallel for the kinds
	// whose reads are pure (Shortcut-EH lookups only touch atomics; HTI
	// reads migrate entries and serialize).
	if o.concurrent {
		lck := &lockedIndex{
			idx:         s.idx,
			readMutates: kind == KindHTI,
			// readSafe is the per-kind capability bit for the seqlock fast
			// path: every kind whose reads are pure qualifies; KindHTI's
			// reads migrate entries and must keep the locked path.
			readSafe:  kind != KindHTI,
			retryHist: o.seqlockHist,
		}
		// The sequence counter starts at 2 so a live (even) value never
		// collides with 0, the cache's empty-slot stamp.
		lck.seq.Store(2)
		if o.readCache && !lck.readMutates {
			lck.cache = new(readCache)
		}
		s.idx = lck
		s.lck = lck
		inner := s.stats
		s.stats = func() Stats {
			lck.mu.Lock()
			defer lck.mu.Unlock()
			if lck.closed {
				return Stats{Kind: kind}
			}
			st := inner()
			lck.fillFastpath(&st)
			return st
		}
	}
	return s, nil
}

// ehShapeStats maps the extendible-hashing shape statistics onto the
// common struct.
func ehShapeStats(ms eh.MemStats) Stats {
	return Stats{
		Entries:        ms.Entries,
		GlobalDepth:    ms.GlobalDepth,
		DirectorySlots: ms.DirectorySlots,
		Buckets:        ms.Buckets,
		LoadFactor:     ms.LoadFactor,
		AvgFanIn:       ms.AvgFanIn,
		StructuralMods: ms.StructuralMods,
	}
}

// scehStats fills the shortcut maintenance and routing fields from a
// Shortcut-EH table's counters.
func scehStats(st *Stats, t *sceh.Table, s sceh.Stats) {
	st.Kind = KindShortcutEH
	st.ShortcutLookups = s.ShortcutLookups
	st.TraditionalLookups = s.TraditionalLookups
	st.UpdatesApplied = s.UpdatesApplied
	st.CreatesApplied = s.CreatesApplied
	st.UpdatesSuperseded = s.UpdatesSuperseded
	st.Remaps = s.Remaps
	st.TradVersion = t.TradVersion()
	st.ShortcutVersion = t.ShortcutVersion()
	st.InSync = t.InSync()
	st.UsingShortcut = t.UsingShortcut()
}

// mergingEH routes deletes through bucket coalescing when
// WithMergeLoadFactor enabled it for KindEH.
type mergingEH struct{ *eh.Table }

func (m mergingEH) Delete(key uint64) bool { return m.Table.DeleteAndMerge(key) }

func (m mergingEH) DeleteBatch(keys []uint64) []bool { return m.Table.DeleteAndMergeBatch(keys) }

// lockedIndex serializes a batchIndex for WithConcurrency. Reads take the
// shared lock unless the implementation mutates on read (KindHTI's
// incremental migration), and batch operations amortize the lock to one
// acquisition. It also owns the authoritative closed check: the flag is
// read under the lock, so close() cannot release the underlying memory
// while an operation is mid-flight.
//
// On top of the lock it layers the two-level pure-GET fast path. seq is
// a seqlock sequence counter: every mutating path bumps it entering and
// leaving the write critical section (odd = writer inside), so a
// lock-free reader can validate that nothing changed around its pass
// and discard the result otherwise. The hot-key cache (WithReadCache)
// stamps its slots with seq, which makes any write an O(1) whole-cache
// invalidation. Optimistic readers register in optReaders before
// touching index memory; only close() waits on that count, so writers
// never block behind readers but pages are never unmapped under one.
type lockedIndex struct {
	mu          sync.RWMutex
	idx         batchIndex
	readMutates bool
	readSafe    bool
	closed      bool

	seq        atomic.Uint64
	optReaders atomic.Int64
	closedA    atomic.Bool
	cache      *readCache
	retryHist  *obs.Hist

	// Fast-path accounting, surfaced through Stats.
	cacheReads   atomic.Uint64
	seqlockReads atomic.Uint64
	lockedGets   atomic.Uint64
	cacheMisses  atomic.Uint64
	seqRetries   atomic.Uint64
	seqFallbacks atomic.Uint64
}

func (l *lockedIndex) fillFastpath(st *Stats) {
	st.FastpathCacheReads = l.cacheReads.Load()
	st.FastpathSeqlockReads = l.seqlockReads.Load()
	st.FastpathLockedReads = l.lockedGets.Load()
	st.CacheMisses = l.cacheMisses.Load()
	st.SeqlockRetries = l.seqRetries.Load()
	st.SeqlockFallbacks = l.seqFallbacks.Load()
}

// beginWrite and endWrite bracket every mutating critical section: the
// write lock plus the seqlock bumps (odd on entry, even on exit) that
// invalidate in-flight optimistic readers and the whole hot-key cache.
func (l *lockedIndex) beginWrite() {
	l.mu.Lock()
	l.seq.Add(1)
}

func (l *lockedIndex) endWrite() {
	l.seq.Add(1)
	l.mu.Unlock()
}

// close marks the index closed and runs release while holding the write
// lock, after every in-flight operation has drained.
func (l *lockedIndex) close(release func() error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.closedA.Store(true)
	l.seq.Add(1) // leave the counter odd: no optimistic read validates again
	// Drain optimistic readers already past their closed check — they
	// hold no lock, so this wait is what keeps release() from unmapping
	// pages under a racing lock-free read. A reader registers before
	// checking closedA, so one that slipped past the check is visible
	// here, and later ones see closedA and bail immediately.
	for l.optReaders.Load() != 0 {
		runtime.Gosched()
	}
	return release()
}

func (l *lockedIndex) rlock() {
	if l.readMutates {
		l.mu.Lock()
	} else {
		l.mu.RLock()
	}
}

func (l *lockedIndex) runlock() {
	if l.readMutates {
		l.mu.Unlock()
	} else {
		l.mu.RUnlock()
	}
}

func (l *lockedIndex) Insert(key, value uint64) error {
	l.beginWrite()
	defer l.endWrite()
	if l.closed {
		return ErrClosed
	}
	return l.idx.Insert(key, value)
}

func (l *lockedIndex) Lookup(key uint64) (uint64, bool) {
	if c := l.cache; c != nil {
		if s := l.seq.Load(); s&1 == 0 {
			if v, ok := c.probe(key, s); ok {
				l.cacheReads.Add(1)
				return v, true
			}
			l.cacheMisses.Add(1)
		}
	}
	l.rlock()
	defer l.runlock()
	if l.closed {
		return 0, false
	}
	v, ok := l.idx.Lookup(key)
	if c := l.cache; c != nil && ok {
		// seq is stable under the read lock; the value is current there.
		c.offer(key, v, l.seq.Load())
	}
	return v, ok
}

func (l *lockedIndex) Delete(key uint64) bool {
	l.beginWrite()
	defer l.endWrite()
	if l.closed {
		return false
	}
	return l.idx.Delete(key)
}

func (l *lockedIndex) Len() int {
	l.rlock()
	defer l.runlock()
	if l.closed {
		return 0
	}
	return l.idx.Len()
}

func (l *lockedIndex) InsertBatch(keys, values []uint64) error {
	l.beginWrite()
	defer l.endWrite()
	if l.closed {
		return ErrClosed
	}
	return l.idx.InsertBatch(keys, values)
}

func (l *lockedIndex) LookupBatch(keys []uint64, out []uint64) []bool {
	l.rlock()
	defer l.runlock()
	if l.closed {
		return zeroFound(len(keys))
	}
	return l.idx.LookupBatch(keys, out)
}

func (l *lockedIndex) DeleteBatch(keys []uint64) []bool {
	l.beginWrite()
	defer l.endWrite()
	if l.closed {
		return zeroFound(len(keys))
	}
	return l.idx.DeleteBatch(keys)
}

// applyBatch executes a mixed batch under ONE lock acquisition — the
// write lock when the batch mutates (or reads migrate, KindHTI), the
// read lock for a pure-GET batch — so a coalesced pipeline round pays
// one lock, not one per kind switch. A pure-GET batch first attempts
// the two-level lock-free fast path (hot-key cache, then a
// seqlock-validated optimistic pass) and only falls back here.
func (l *lockedIndex) applyBatch(b *op.Batch, res *op.Results) ([3]uint64, error) {
	pureGet := b.Mutations() == 0 && !l.readMutates
	if pureGet && b.Len() > 0 {
		if l.fastGets(b, res) {
			return op.CountRuns(b.Kinds()), nil
		}
	}
	if !pureGet {
		l.beginWrite()
		defer l.endWrite()
	} else {
		l.mu.RLock()
		defer l.mu.RUnlock()
	}
	if l.closed {
		res.Reset(b.Len())
		return [3]uint64{}, ErrClosed
	}
	runs, err := applyRuns(l.idx, b, res)
	if b.Mutations() == 0 {
		// GET entries served under the lock — including KindHTI's, whose
		// migrating reads hold the write lock.
		l.lockedGets.Add(uint64(b.Len()))
	}
	if pureGet {
		if c := l.cache; c != nil {
			// seq is stable under the read lock: stamp the values with it
			// so the cache serves them until the next write.
			s := l.seq.Load()
			keys := b.Keys()
			for i, k := range keys {
				if res.Found[i] {
					c.offer(k, res.Vals[i], s)
				}
			}
		}
	}
	return runs, err
}

// fastGets serves a pure-GET batch without taking the lock. Level 2
// first: when every key of the batch is resident in the hot-key cache
// at the current sequence stamp, the batch is answered from atomics
// alone. Level 1 otherwise: on read-safe kinds (plain builds — the race
// detector would flag the unsynchronized reads, so -race builds skip
// it) an optimistic pass reads the index lock-free and is kept only if
// the sequence counter says no writer overlapped it; after
// seqlockRetries failed validations the caller falls back to the lock.
func (l *lockedIndex) fastGets(b *op.Batch, res *op.Results) bool {
	keys := b.Keys()
	if !raceEnabled && l.readSafe {
		return l.seqlockGets(keys, res)
	}
	c := l.cache
	if c == nil {
		return false
	}
	s := l.seq.Load()
	if s&1 != 0 {
		return false
	}
	res.Reset(len(keys))
	for i, k := range keys {
		v, ok := c.probe(k, s)
		if !ok {
			l.cacheMisses.Add(1)
			return false
		}
		res.Vals[i], res.Found[i] = v, true
	}
	// Every slot matched stamp s, so all values form one consistent
	// snapshot as of the moment s was current — the linearization point.
	l.cacheReads.Add(uint64(len(keys)))
	return true
}

// seqlockRetries is how many discarded optimistic passes a pure-GET
// batch tolerates before giving up and taking the read lock.
const seqlockRetries = 3

func (l *lockedIndex) seqlockGets(keys []uint64, res *op.Results) bool {
	// Register before the closed check: close() sets closedA, then waits
	// for this count to drain before releasing index memory, so a reader
	// that saw closedA false is covered by that wait.
	l.optReaders.Add(1)
	defer l.optReaders.Add(-1)
	if l.closedA.Load() {
		return false
	}
	for attempt := 0; attempt <= seqlockRetries; attempt++ {
		s := l.seq.Load()
		if s&1 != 0 {
			runtime.Gosched() // writer inside; yield rather than spin
			continue
		}
		hits, ok := l.optimisticPass(keys, res, s)
		if ok && l.seq.Load() == s {
			l.cacheReads.Add(uint64(hits))
			if l.cache != nil {
				l.cacheMisses.Add(uint64(len(keys) - hits))
			}
			l.seqlockReads.Add(uint64(len(keys) - hits))
			if l.retryHist != nil {
				l.retryHist.Record(uint64(attempt))
			}
			if c := l.cache; c != nil {
				for i, k := range keys {
					if res.Found[i] {
						c.offer(k, res.Vals[i], s)
					}
				}
			}
			return true
		}
		l.seqRetries.Add(1)
	}
	l.seqFallbacks.Add(1)
	return false
}

// optimisticPass reads each key — hot-key cache first, underlying index
// second — without any lock, protected only by the caller's seqlock
// validation. A writer racing the pass can expose a mid-rebuild index
// (a grown table's slices mid-swap), so an out-of-range panic from a
// torn read is absorbed and reported as !ok; the caller discards the
// results either way, because the sequence counter has moved.
func (l *lockedIndex) optimisticPass(keys []uint64, res *op.Results, s uint64) (hits int, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	res.Reset(len(keys))
	c := l.cache
	for i, k := range keys {
		if c != nil {
			if v, hit := c.probe(k, s); hit {
				res.Vals[i], res.Found[i] = v, true
				hits++
				continue
			}
		}
		res.Vals[i], res.Found[i] = l.idx.Lookup(k)
	}
	return hits, true
}

func (l *lockedIndex) Range(fn func(key, value uint64) bool) {
	l.rlock()
	defer l.runlock()
	if l.closed {
		return
	}
	l.idx.Range(fn)
}

// store implements Store: one batchIndex plus kind-specific lifecycle and
// observability hooks.
type store struct {
	kind       Kind
	idx        batchIndex
	pool       *Pool
	ownsPool   bool
	under      any                      // concrete table for the As* escape hatches
	closeInner func() error             // kind's own Close; nil when it has none
	waitSync   func(time.Duration) bool // nil: always in sync
	stats      func() Stats
	lck        *lockedIndex // set with WithConcurrency; owns close ordering

	// Batch-call counters surfaced through Stats; atomics so concurrent
	// stores count without widening any lock's critical section.
	insertBatches atomic.Uint64
	lookupBatches atomic.Uint64
	deleteBatches atomic.Uint64

	closeMu sync.Mutex
	closed  atomic.Bool
}

func (s *store) Kind() Kind { return s.kind }

func (s *store) Insert(key, value uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	return s.idx.Insert(key, value)
}

func (s *store) Lookup(key uint64) (uint64, bool) {
	if s.closed.Load() {
		return 0, false
	}
	return s.idx.Lookup(key)
}

func (s *store) Delete(key uint64) bool {
	if s.closed.Load() {
		return false
	}
	return s.idx.Delete(key)
}

func (s *store) Len() int {
	if s.closed.Load() {
		return 0
	}
	return s.idx.Len()
}

func (s *store) InsertBatch(keys, values []uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.insertBatches.Add(1)
	return s.idx.InsertBatch(keys, values)
}

func (s *store) LookupBatch(keys []uint64, out []uint64) []bool {
	if s.closed.Load() {
		return zeroFound(len(keys))
	}
	s.lookupBatches.Add(1)
	return s.idx.LookupBatch(keys, out)
}

func (s *store) DeleteBatch(keys []uint64) []bool {
	if s.closed.Load() {
		return zeroFound(len(keys))
	}
	s.deleteBatches.Add(1)
	return s.idx.DeleteBatch(keys)
}

func (s *store) ApplyBatch(b *op.Batch, res *op.Results) error {
	if s.closed.Load() {
		res.Reset(b.Len())
		return ErrClosed
	}
	var runs [3]uint64
	var err error
	if s.lck != nil {
		runs, err = s.lck.applyBatch(b, res)
	} else {
		runs, err = applyRuns(s.idx, b, res)
	}
	s.lookupBatches.Add(runs[op.Get])
	s.insertBatches.Add(runs[op.Put])
	s.deleteBatches.Add(runs[op.Del])
	return err
}

func (s *store) Range(fn func(key, value uint64) bool) {
	if s.closed.Load() {
		return
	}
	s.idx.Range(fn)
}

func (s *store) Stats() Stats {
	if s.closed.Load() {
		return Stats{Kind: s.kind}
	}
	st := s.stats()
	st.InsertBatches = s.insertBatches.Load()
	st.LookupBatches = s.lookupBatches.Load()
	st.DeleteBatches = s.deleteBatches.Load()
	return st
}

func (s *store) WaitSync(timeout time.Duration) bool {
	if s.closed.Load() {
		return false
	}
	if s.waitSync == nil {
		return true
	}
	return s.waitSync(timeout)
}

// Close releases the index and, when Open created it, the backing pool.
// Calling it again is a no-op returning nil. On a WithConcurrency store
// the release runs under the wrapper's write lock, after in-flight
// operations have drained.
func (s *store) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return nil
	}
	s.closed.Store(true)
	release := func() error {
		var firstErr error
		if s.closeInner != nil {
			firstErr = s.closeInner()
		}
		if s.ownsPool {
			if err := s.pool.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	if s.lck != nil {
		return s.lck.close(release)
	}
	return release()
}

// AsShortcutEH returns the Shortcut-EH table behind an open
// KindShortcutEH store, for read-only inspection past the uniform surface.
// With WithConcurrency, the caller must not race mutations through it.
// A sharded store (WithShards > 1) has no single concrete table, so every
// As* escape hatch reports false for it.
func AsShortcutEH(s Store) (*ShortcutEH, bool) {
	t, ok := underOf(s).(*sceh.Table)
	return t, ok
}

// AsExtendibleHashing returns the EH table behind an open KindEH store,
// e.g. for WriteSnapshot; same caveats as AsShortcutEH.
func AsExtendibleHashing(s Store) (*ExtendibleHashing, bool) {
	t, ok := underOf(s).(*eh.Table)
	return t, ok
}

// AsRadixMap returns the radix map behind an open KindRadix store, e.g.
// for Range iteration; same caveats as AsShortcutEH.
func AsRadixMap(s Store) (*RadixMap, bool) {
	m, ok := underOf(s).(*radix.Map)
	return m, ok
}

func underOf(s Store) any {
	// The durable wrapper is transparent here: it decorates exactly one
	// inner store, so the documented "sharded stores are the only ones
	// without a concrete table" contract holds with WithWAL too.
	if d, ok := s.(*durableStore); ok {
		s = d.inner
	}
	st, ok := s.(*store)
	if !ok || st.closed.Load() {
		return nil
	}
	return st.under
}

// Package vmshortcut is a Go implementation of virtual-memory shortcuts —
// database index indirections expressed directly in the page table of the
// OS instead of materialized pointers — as introduced in
//
//	Felix Schuhknecht: "Taking the Shortcut: Actively Incorporating the
//	Virtual Memory Index of the OS to Hardware-Accelerate Database
//	Indexing", CIDR 2024.
//
// # Layers
//
// The package exposes three layers:
//
//   - The rewiring layer: a Pool of physical pages (one main-memory file
//     created with memfd_create) plus TraditionalNode and ShortcutNode —
//     radix-style inner nodes where the shortcut variant maps each slot's
//     virtual page straight onto the physical page of its leaf, so a
//     lookup resolves a single, hardware-accelerated indirection: the MMU
//     walks the page table instead of the index chasing a pointer.
//
//   - The index layer: six uint64→uint64 indexes behind one constructor,
//     Open(kind, opts...). Every kind is served through the uniform Store
//     surface: the Index operations, InsertBatch/LookupBatch for
//     amortized hot loops, Stats, WaitSync, and an idempotent Close.
//
//   - The simulation layer (vmsim): a deterministic software MMU — 4-level
//     page table, two-level TLB, three-level cache model — used by the
//     benchmark harness to regenerate the paper's hardware-bound figures
//     deterministically.
//
// # Index kinds
//
// The paper's four baselines and two shortcut-backed indexes:
//
//   - KindHT: one open-addressing hash table that doubles with a full
//     stop-the-world rehash when the load factor threshold is exceeded.
//   - KindHTI: Redis-style incremental rehashing — each access migrates a
//     batch of entries to the new table, so growth never stalls a single
//     operation for long (reads mutate, which matters for concurrency).
//   - KindCH: chained hashing over a fixed-size directory with 128-byte
//     overflow buckets and no rehashing (the paper grants it 1 GB).
//   - KindEH: classical extendible hashing — a pointer directory indexed
//     by the hash's most significant bits over 4 KB buckets; a bucket
//     split doubles the directory when local depth reaches global depth.
//   - KindShortcutEH: the paper's contribution. The EH directory is
//     additionally expressed as a page-table shortcut: one virtual page
//     per directory slot, remapped onto the physical page of its bucket.
//     A mapper thread maintains the shortcut asynchronously; lookups
//     route through it whenever it is in sync and the directory fan-in is
//     low enough for the TLB.
//   - KindRadix: a sparse direct-mapped shortcut index over a bounded key
//     space — a second application of the same rewiring primitive, with
//     synchronous maintenance.
//
// # Quickstart
//
// Opening the paper's index takes one call — Open creates and owns the
// backing page pool unless WithPool injects one:
//
//	idx, err := vmshortcut.Open(vmshortcut.KindShortcutEH)
//	if err != nil { ... }
//	defer idx.Close()
//	idx.Insert(1, 42)
//
// Functional options (WithCapacity, WithPollInterval, WithFanInThreshold,
// WithAdaptiveRouting, WithConcurrency, WithShards, ...) tune the chosen
// kind; options that do not apply to a kind are ignored so one option set
// can drive a sweep over all of them. The per-kind constructors
// (NewHashTable, NewExtendibleHashing, NewShortcutEH, ...) predate Open
// and remain as deprecated wrappers.
//
// # Concurrency
//
// The paper's prototype is single-writer; so is a plain Open store. Two
// options lift that:
//
//   - WithConcurrency(true) wraps the store in one readers-writer lock —
//     parallel lookups, exclusive mutation.
//   - WithShards(n) hash-partitions the keyspace across n independent
//     sub-stores, each with its own lock stripe and page pool. Single
//     operations route by key hash; batches split by shard and fan out
//     across goroutines; Stats aggregates; WaitSync and Close fan out and
//     drain. Writers to different shards proceed in parallel.
//
// Under either option, pure-GET traffic takes a lock-free fast path:
// writers bump a per-shard sequence counter (odd while mutating), and
// readers run optimistic seqlock passes — plus, with WithReadCache(true),
// probes of a small hot-key cache whose entries are stamped with that
// counter, so one write invalidates the whole cache in O(1). Each index
// kind carries a readSafe capability bit recording whether its Lookup is
// free of side effects; kinds that mutate on read (KindHTI migrates
// entries on access) clear it and keep the locked path, so the fast path
// can never run a read that writes. Stats reports the per-level serve
// counts (FastpathCacheReads / FastpathSeqlockReads /
// FastpathLockedReads).
//
// All rewired memory lives outside the Go heap; the garbage collector
// never observes it. Linux is required for the rewiring layer (memfd +
// MAP_FIXED); every other layer is portable.
//
// # Close ordering
//
// Close — on a plain, concurrent, sharded, or durable store alike —
// returns only after (1) in-flight operations have drained (the
// concurrent wrapper's write lock, taken per shard on a sharded store),
// and (2) every background maintenance goroutine the store started has
// stopped: each shard's Shortcut-EH mapper thread is joined, and a
// durable store's WAL interval syncer is stopped after a final
// flush+fsync. After Close returns, no goroutine started by Open remains
// running and no further disk writes occur; operations started after
// Close fail with ErrClosed (or report "not found" where the signature
// has no error).
//
// # Durability
//
// A store is in-memory by default; WithWAL(dir) makes it restart-safe.
// Every mutation batch is appended as one CRC-checked record to an
// append-only, segment-rotated write-ahead log (package wal) — one
// record per caller-facing batch, so the server's coalescer and the
// sharded fan-out keep durability off the per-op path. WithFsync selects
// the policy: FsyncAlways (the default) group-commits an fsync before
// the mutation returns, so an acknowledged write survives kill -9;
// FsyncInterval bounds loss to a background sync period; FsyncOff leaves
// write-back to the OS. Point-in-time snapshots (package persist, driven
// by the Store.Range capability every kind implements natively) bound
// recovery time: Open recovers by restoring the newest valid snapshot
// and replaying the WAL tail, truncating a torn final record. Snapshots
// are taken automatically every WithSnapshotEvery(n) records, or
// explicitly through the Durable surface (AsDurable: Snapshot,
// CompactWAL), and store plain pairs — they restore into any kind.
//
// # Serving
//
// The server and client packages put a Store on the network: a TCP
// server speaking a length-prefixed binary protocol with full
// pipelining, whose per-connection coalescer gathers pipelined requests
// into InsertBatch/LookupBatch/DeleteBatch calls — the once-per-batch
// routing decision and the sharded fan-out, exploited per round trip.
// cmd/ehserver is the standalone daemon (every Open option as a flag),
// cmd/ehload the YCSB load generator that records throughput and HDR
// latency percentiles to BENCH_server.json.
package vmshortcut

//go:build race

package vmshortcut

// raceEnabled gates the seqlock read path: its whole point is reading
// the index without synchronization and discarding invalidated results,
// which is exactly what the race detector exists to flag. Under -race
// the fast path degrades to the hot-key cache (atomics only) plus the
// locked fallback, so the detector stays meaningful for everything
// else.
const raceEnabled = true

package vmshortcut

import (
	"io"
	"time"

	"vmshortcut/internal/ch"
	"vmshortcut/internal/core"
	"vmshortcut/internal/eh"
	"vmshortcut/internal/ht"
	"vmshortcut/internal/hti"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/radix"
	"vmshortcut/internal/sceh"
)

// Index is the common operation surface of all five hash indexes:
// an upserting Insert, a Lookup, a Delete, and the entry count.
type Index interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool)
	Delete(key uint64) bool
	Len() int
}

// Pool re-exports the physical page pool (one memfd-backed main-memory
// file with a stable linear window).
type Pool = pool.Pool

// PoolConfig re-exports the pool configuration.
type PoolConfig = pool.Config

// PageRef identifies a physical page by its offset in the pool file.
type PageRef = pool.Ref

// TraditionalNode is a pointer-based radix inner node over pool pages.
type TraditionalNode = core.Traditional

// ShortcutNode is a page-table-expressed inner node: one virtual page per
// slot, rewired onto the physical pages of its leaves.
type ShortcutNode = core.Shortcut

// NewPool creates a physical page pool.
func NewPool(cfg PoolConfig) (*Pool, error) { return pool.New(cfg) }

// NewTraditionalNode allocates a pointer-based inner node with k slots.
func NewTraditionalNode(p *Pool, k int) *TraditionalNode { return core.NewTraditional(p, k) }

// NewShortcutNode reserves the virtual area for a k-slot shortcut node.
func NewShortcutNode(p *Pool, k int) (*ShortcutNode, error) { return core.NewShortcut(p, k) }

// HashTableConfig configures NewHashTable.
type HashTableConfig = ht.Config

// NewHashTable creates the HT baseline: one open-addressing table that
// doubles (with a full rehash) when its load factor exceeds the threshold.
//
// Deprecated: use Open(KindHT, opts...) for the uniform Store surface.
func NewHashTable(cfg HashTableConfig) Index { return ht.New(cfg) }

// IncrementalConfig configures NewIncrementalHashTable.
type IncrementalConfig = hti.Config

// NewIncrementalHashTable creates the HTI baseline: Redis-style
// incremental rehashing — each access migrates a batch of entries.
//
// Deprecated: use Open(KindHTI, opts...) for the uniform Store surface.
func NewIncrementalHashTable(cfg IncrementalConfig) Index { return hti.New(cfg) }

// ChainedConfig configures NewChainedHashTable.
type ChainedConfig = ch.Config

// NewChainedHashTable creates the CH baseline: a fixed-size table with
// 128-byte overflow bucket chains and no rehashing.
//
// Deprecated: use Open(KindCH, opts...) for the uniform Store surface.
func NewChainedHashTable(cfg ChainedConfig) Index { return ch.New(cfg) }

// ExtendibleConfig configures NewExtendibleHashing.
type ExtendibleConfig = eh.Config

// ExtendibleHashing is the EH baseline with access to its directory
// statistics (global depth, bucket count, version).
type ExtendibleHashing = eh.Table

// NewExtendibleHashing creates classical extendible hashing over pool
// pages: a pointer directory indexed by the hash's most significant bits
// over 4 KB buckets.
//
// Deprecated: use Open(KindEH, opts...) for the uniform Store surface;
// AsExtendibleHashing recovers the concrete table, e.g. for snapshots.
func NewExtendibleHashing(p *Pool, cfg ExtendibleConfig) (*ExtendibleHashing, error) {
	return eh.New(p, cfg)
}

// ShortcutEHConfig configures NewShortcutEH.
type ShortcutEHConfig = sceh.Config

// ShortcutEH is the paper's contribution: extendible hashing whose
// directory is additionally expressed as a page-table shortcut, maintained
// asynchronously and used for lookups whenever it is in sync and the
// average fan-in permits.
type ShortcutEH = sceh.Table

// NewShortcutEH creates a Shortcut-EH index and starts its mapper thread.
// Close it to stop the mapper and release the shortcut's virtual areas.
//
// Deprecated: use Open(KindShortcutEH, opts...) for the uniform Store
// surface; AsShortcutEH recovers the concrete table.
func NewShortcutEH(p *Pool, cfg ShortcutEHConfig) (*ShortcutEH, error) {
	return sceh.New(p, cfg)
}

// ConcurrentShortcutEH is a Shortcut-EH table behind a readers-writer
// lock: any number of concurrent Lookups, exclusive mutation.
type ConcurrentShortcutEH = sceh.Concurrent

// NewConcurrentShortcutEH creates a concurrency-safe Shortcut-EH table.
//
// Deprecated: use Open(KindShortcutEH, WithConcurrency(true), opts...).
func NewConcurrentShortcutEH(p *Pool, cfg ShortcutEHConfig) (*ConcurrentShortcutEH, error) {
	return sceh.NewConcurrent(p, cfg)
}

// RadixMapConfig configures NewRadixMap.
type RadixMapConfig = radix.Config

// RadixMap is a second shortcut application: a sparse direct-mapped
// uint64→uint64 index over a bounded key space, whose single wide inner
// node is expressed as a synchronously maintained page-table shortcut.
type RadixMap = radix.Map

// NewRadixMap creates a sparse direct-mapped index covering keys
// [0, cfg.Capacity).
//
// Deprecated: use Open(KindRadix, WithCapacity(n), opts...); AsRadixMap
// recovers the concrete map, e.g. for Range iteration.
func NewRadixMap(p *Pool, cfg RadixMapConfig) (*RadixMap, error) { return radix.New(p, cfg) }

// RestoreExtendibleHashing reads a snapshot written by
// (*ExtendibleHashing).WriteSnapshot into a fresh table backed by p.
func RestoreExtendibleHashing(p *Pool, cfg ExtendibleConfig, r io.Reader) (*ExtendibleHashing, error) {
	return eh.Restore(p, cfg, r)
}

// DefaultPollInterval is the paper's empirically chosen mapper polling
// frequency (§4.1).
const DefaultPollInterval = 25 * time.Millisecond

// Package vmshortcut is a Go implementation of virtual-memory shortcuts —
// database index indirections expressed directly in the page table of the
// OS instead of materialized pointers — as introduced in
//
//	Felix Schuhknecht: "Taking the Shortcut: Actively Incorporating the
//	Virtual Memory Index of the OS to Hardware-Accelerate Database
//	Indexing", CIDR 2024.
//
// The package exposes three layers:
//
//   - The rewiring layer: a Pool of physical pages (one main-memory file
//     created with memfd_create) plus TraditionalNode and ShortcutNode —
//     radix-style inner nodes where the shortcut variant maps each slot's
//     virtual page straight onto the physical page of its leaf, so a
//     lookup resolves a single, hardware-accelerated indirection.
//
//   - The index layer: six uint64→uint64 indexes behind one constructor,
//     Open(kind, opts...) — the paper's four hash-table baselines (KindHT,
//     KindHTI, KindCH, KindEH), the paper's contribution KindShortcutEH
//     (extendible hashing whose directory is additionally expressed as a
//     page-table shortcut maintained asynchronously by a mapper thread),
//     and KindRadix, a sparse direct-mapped shortcut index. Every kind is
//     served through the uniform Store surface: the Index operations,
//     InsertBatch/LookupBatch for amortized hot loops, Stats, WaitSync,
//     and an idempotent Close.
//
//   - The simulation layer (vmsim): a deterministic software MMU — 4-level
//     page table, two-level TLB, three-level cache model — used by the
//     benchmark harness to regenerate the paper's hardware-bound figures
//     deterministically.
//
// Opening the paper's index takes one call — Open creates and owns the
// backing page pool unless WithPool injects one:
//
//	idx, err := vmshortcut.Open(vmshortcut.KindShortcutEH)
//	if err != nil { ... }
//	defer idx.Close()
//	idx.Insert(1, 42)
//
// Functional options (WithCapacity, WithPollInterval, WithFanInThreshold,
// WithAdaptiveRouting, WithConcurrency, ...) tune the chosen kind;
// options that do not apply to a kind are ignored so one option set can
// drive a sweep over all of them. The per-kind constructors below
// (NewHashTable, NewExtendibleHashing, NewShortcutEH, ...) predate Open
// and remain as deprecated wrappers.
//
// All rewired memory lives outside the Go heap; the garbage collector
// never observes it. Linux is required for the rewiring layer (memfd +
// MAP_FIXED); every other layer is portable.
package vmshortcut

import (
	"io"
	"time"

	"vmshortcut/internal/ch"
	"vmshortcut/internal/core"
	"vmshortcut/internal/eh"
	"vmshortcut/internal/ht"
	"vmshortcut/internal/hti"
	"vmshortcut/internal/pool"
	"vmshortcut/internal/radix"
	"vmshortcut/internal/sceh"
)

// Index is the common operation surface of all five hash indexes:
// an upserting Insert, a Lookup, a Delete, and the entry count.
type Index interface {
	Insert(key, value uint64) error
	Lookup(key uint64) (uint64, bool)
	Delete(key uint64) bool
	Len() int
}

// Pool re-exports the physical page pool (one memfd-backed main-memory
// file with a stable linear window).
type Pool = pool.Pool

// PoolConfig re-exports the pool configuration.
type PoolConfig = pool.Config

// PageRef identifies a physical page by its offset in the pool file.
type PageRef = pool.Ref

// TraditionalNode is a pointer-based radix inner node over pool pages.
type TraditionalNode = core.Traditional

// ShortcutNode is a page-table-expressed inner node: one virtual page per
// slot, rewired onto the physical pages of its leaves.
type ShortcutNode = core.Shortcut

// NewPool creates a physical page pool.
func NewPool(cfg PoolConfig) (*Pool, error) { return pool.New(cfg) }

// NewTraditionalNode allocates a pointer-based inner node with k slots.
func NewTraditionalNode(p *Pool, k int) *TraditionalNode { return core.NewTraditional(p, k) }

// NewShortcutNode reserves the virtual area for a k-slot shortcut node.
func NewShortcutNode(p *Pool, k int) (*ShortcutNode, error) { return core.NewShortcut(p, k) }

// HashTableConfig configures NewHashTable.
type HashTableConfig = ht.Config

// NewHashTable creates the HT baseline: one open-addressing table that
// doubles (with a full rehash) when its load factor exceeds the threshold.
//
// Deprecated: use Open(KindHT, opts...) for the uniform Store surface.
func NewHashTable(cfg HashTableConfig) Index { return ht.New(cfg) }

// IncrementalConfig configures NewIncrementalHashTable.
type IncrementalConfig = hti.Config

// NewIncrementalHashTable creates the HTI baseline: Redis-style
// incremental rehashing — each access migrates a batch of entries.
//
// Deprecated: use Open(KindHTI, opts...) for the uniform Store surface.
func NewIncrementalHashTable(cfg IncrementalConfig) Index { return hti.New(cfg) }

// ChainedConfig configures NewChainedHashTable.
type ChainedConfig = ch.Config

// NewChainedHashTable creates the CH baseline: a fixed-size table with
// 128-byte overflow bucket chains and no rehashing.
//
// Deprecated: use Open(KindCH, opts...) for the uniform Store surface.
func NewChainedHashTable(cfg ChainedConfig) Index { return ch.New(cfg) }

// ExtendibleConfig configures NewExtendibleHashing.
type ExtendibleConfig = eh.Config

// ExtendibleHashing is the EH baseline with access to its directory
// statistics (global depth, bucket count, version).
type ExtendibleHashing = eh.Table

// NewExtendibleHashing creates classical extendible hashing over pool
// pages: a pointer directory indexed by the hash's most significant bits
// over 4 KB buckets.
//
// Deprecated: use Open(KindEH, opts...) for the uniform Store surface;
// AsExtendibleHashing recovers the concrete table, e.g. for snapshots.
func NewExtendibleHashing(p *Pool, cfg ExtendibleConfig) (*ExtendibleHashing, error) {
	return eh.New(p, cfg)
}

// ShortcutEHConfig configures NewShortcutEH.
type ShortcutEHConfig = sceh.Config

// ShortcutEH is the paper's contribution: extendible hashing whose
// directory is additionally expressed as a page-table shortcut, maintained
// asynchronously and used for lookups whenever it is in sync and the
// average fan-in permits.
type ShortcutEH = sceh.Table

// NewShortcutEH creates a Shortcut-EH index and starts its mapper thread.
// Close it to stop the mapper and release the shortcut's virtual areas.
//
// Deprecated: use Open(KindShortcutEH, opts...) for the uniform Store
// surface; AsShortcutEH recovers the concrete table.
func NewShortcutEH(p *Pool, cfg ShortcutEHConfig) (*ShortcutEH, error) {
	return sceh.New(p, cfg)
}

// ConcurrentShortcutEH is a Shortcut-EH table behind a readers-writer
// lock: any number of concurrent Lookups, exclusive mutation.
type ConcurrentShortcutEH = sceh.Concurrent

// NewConcurrentShortcutEH creates a concurrency-safe Shortcut-EH table.
//
// Deprecated: use Open(KindShortcutEH, WithConcurrency(true), opts...).
func NewConcurrentShortcutEH(p *Pool, cfg ShortcutEHConfig) (*ConcurrentShortcutEH, error) {
	return sceh.NewConcurrent(p, cfg)
}

// RadixMapConfig configures NewRadixMap.
type RadixMapConfig = radix.Config

// RadixMap is a second shortcut application: a sparse direct-mapped
// uint64→uint64 index over a bounded key space, whose single wide inner
// node is expressed as a synchronously maintained page-table shortcut.
type RadixMap = radix.Map

// NewRadixMap creates a sparse direct-mapped index covering keys
// [0, cfg.Capacity).
//
// Deprecated: use Open(KindRadix, WithCapacity(n), opts...); AsRadixMap
// recovers the concrete map, e.g. for Range iteration.
func NewRadixMap(p *Pool, cfg RadixMapConfig) (*RadixMap, error) { return radix.New(p, cfg) }

// RestoreExtendibleHashing reads a snapshot written by
// (*ExtendibleHashing).WriteSnapshot into a fresh table backed by p.
func RestoreExtendibleHashing(p *Pool, cfg ExtendibleConfig, r io.Reader) (*ExtendibleHashing, error) {
	return eh.Restore(p, cfg, r)
}

// DefaultPollInterval is the paper's empirically chosen mapper polling
// frequency (§4.1).
const DefaultPollInterval = 25 * time.Millisecond

package vmshortcut

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmshortcut/wal"
)

// verifyEntries checks the store holds exactly want.
func verifyEntries(t *testing.T, s Store, want map[uint64]uint64) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for k, v := range want {
		got, ok := s.Lookup(k)
		if !ok || got != v {
			t.Fatalf("Lookup(%d) = %d, %v, want %d", k, got, ok, v)
		}
	}
}

// TestDurableRecoverFromWAL covers the pure log-replay path: no snapshot,
// close, reopen, identical keyspace — across all six kinds and the
// sharded store, since replay exercises each kind's batch paths.
func TestDurableRecoverFromWAL(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := []Option{WithCapacity(5000), WithWAL(dir), WithFsync(FsyncAlways)}
			s, err := Open(kind, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want := map[uint64]uint64{}
			for i := uint64(0); i < 1000; i++ {
				if err := s.Insert(i, i*2); err != nil {
					t.Fatal(err)
				}
				want[i] = i * 2
			}
			// Batch mutations, overwrites, and deletes must all replay.
			keys := []uint64{10, 20, 30}
			vals := []uint64{111, 222, 333}
			if err := s.InsertBatch(keys, vals); err != nil {
				t.Fatal(err)
			}
			for i, k := range keys {
				want[k] = vals[i]
			}
			for _, ok := range s.DeleteBatch([]uint64{5, 15, 25}) {
				if !ok {
					t.Fatal("delete missed")
				}
			}
			delete(want, 5)
			delete(want, 15)
			delete(want, 25)
			st := s.Stats()
			if st.WALRecords == 0 || st.DurableLSN != st.WALRecords {
				t.Fatalf("durability stats not filled: %+v", st)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(kind, opts...)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			verifyEntries(t, s2, want)
		})
	}
}

// TestDurableApplyBatchRecovery covers the unified pipeline's durability
// path: mixed batches (including GET entries, which must not be replayed
// as mutations) applied through ApplyBatch land as ONE WAL record each
// and recover exactly — across every kind and the sharded store.
func TestDurableApplyBatchRecovery(t *testing.T) {
	kinds := []struct {
		name string
		open func(dir string) (Store, error)
	}{
		{"ht", func(dir string) (Store, error) {
			return Open(KindHT, WithWAL(dir), WithFsync(FsyncAlways))
		}},
		{"shortcut-eh", func(dir string) (Store, error) {
			return Open(KindShortcutEH, WithWAL(dir), WithFsync(FsyncAlways))
		}},
		{"sharded", func(dir string) (Store, error) {
			return Open(KindShortcutEH, WithShards(4), WithWAL(dir), WithFsync(FsyncAlways))
		}},
	}
	for _, tc := range kinds {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := tc.open(dir)
			if err != nil {
				t.Fatal(err)
			}
			var res OpResults
			var b OpBatch
			b.Put(1, 10)
			b.Get(1)
			b.Put(2, 20)
			b.Del(1)
			if err := s.ApplyBatch(&b, &res); err != nil {
				t.Fatal(err)
			}
			b.Reset()
			b.Put(3, 30)
			b.Put(2, 21) // overwrite in a later record
			if err := s.ApplyBatch(&b, &res); err != nil {
				t.Fatal(err)
			}
			// A read-only batch appends NO record.
			before := s.Stats().WALRecords
			b.Reset()
			b.Get(2)
			b.Get(3)
			if err := s.ApplyBatch(&b, &res); err != nil {
				t.Fatal(err)
			}
			if !res.Found[0] || res.Vals[0] != 21 || !res.Found[1] || res.Vals[1] != 30 {
				t.Fatalf("read-only batch results = %+v", res)
			}
			st := s.Stats()
			if st.WALRecords != before {
				t.Fatalf("read-only batch appended a record (%d → %d)", before, st.WALRecords)
			}
			if st.WALRecords != 2 {
				t.Fatalf("2 mutation batches produced %d records, want 2", st.WALRecords)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := tc.open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			verifyEntries(t, s2, map[uint64]uint64{2: 21, 3: 30})
		})
	}
}

// TestDurableApplyBatchRejectsOversizedBeforeApply pins the
// validate-before-apply ordering: a mutation batch too large for one WAL
// record must be rejected WITHOUT touching the keyspace — rejecting
// after the apply would leave mutations live in memory with no record
// and no sticky log error, silent divergence a crash would surface as
// data loss.
func TestDurableApplyBatchRejectsOversizedBeforeApply(t *testing.T) {
	s, err := Open(KindHT, WithWAL(t.TempDir()), WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var b OpBatch
	for i := uint64(0); i <= uint64(wal.MaxRecordPairs); i++ {
		b.Put(i, i)
	}
	var res OpResults
	if err := s.ApplyBatch(&b, &res); err == nil {
		t.Fatal("oversized mutation batch accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("rejected batch still applied %d entries", s.Len())
	}
	if got := s.Stats().WALRecords; got != 0 {
		t.Fatalf("rejected batch appended %d records", got)
	}
	// A pure-read batch of any size is fine — it never becomes a record.
	b.Reset()
	for i := uint64(0); i <= uint64(wal.MaxRecordPairs); i++ {
		b.Get(i)
	}
	if err := s.ApplyBatch(&b, &res); err != nil {
		t.Fatalf("oversized read-only batch rejected: %v", err)
	}
}

// TestDurableSnapshotAndTail covers the combined path: snapshot, more
// mutations, recovery = snapshot + WAL tail, and compaction dropping the
// covered segments without losing anything.
func TestDurableSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{
		WithShards(2), WithWAL(dir), WithFsync(FsyncAlways),
		WithWALSegmentBytes(512), // rotate often so Compact has work
	}
	s, err := Open(KindEH, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	for i := uint64(0); i < 500; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		want[i] = i
	}
	d, ok := AsDurable(s)
	if !ok {
		t.Fatal("AsDurable failed on a WithWAL store")
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().SnapshotLSN == 0 {
		t.Fatal("SnapshotLSN still 0 after Snapshot")
	}
	removed, err := d.CompactWAL()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("CompactWAL removed no segments despite tiny segment size")
	}
	// Tail mutations after the snapshot.
	for i := uint64(500); i < 700; i++ {
		if err := s.Insert(i, i*5); err != nil {
			t.Fatal(err)
		}
		want[i] = i * 5
	}
	s.Delete(0)
	delete(want, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(KindEH, opts...)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	verifyEntries(t, s2, want)
}

// copyDir simulates a crash: with FsyncAlways every acknowledged write is
// in the copied files, exactly as kill -9 would leave them.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableCrashRecovery snapshots the WAL dir mid-life — no Close, no
// final flush — and recovers from the copy: everything acknowledged
// before the "crash" must be there.
func TestDurableCrashRecovery(t *testing.T) {
	live := t.TempDir()
	s, err := Open(KindShortcutEH, WithWAL(live), WithFsync(FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[uint64]uint64{}
	for i := uint64(0); i < 300; i++ {
		if err := s.Insert(i, i+7); err != nil {
			t.Fatal(err)
		}
		want[i] = i + 7
	}
	// The crash: copy the directory while the store is still open.
	crashed := t.TempDir()
	copyDir(t, live, crashed)

	s2, err := Open(KindShortcutEH, WithWAL(crashed), WithFsync(FsyncAlways))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	verifyEntries(t, s2, want)
}

// TestDurableTornTailRecovery appends garbage to the newest segment —
// half a record, as a crash mid-write leaves it — and recovery must
// truncate it and serve everything before it.
func TestDurableTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithWAL(dir), WithFsync(FsyncAlways)}
	s, err := Open(KindHT, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	for i := uint64(0); i < 100; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		want[i] = i
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a plausible header promising more bytes than exist.
	var segPath string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			segPath = filepath.Join(dir, e.Name())
		}
	}
	if segPath == "" {
		t.Fatal("no segment found")
	}
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{40, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(KindHT, opts...)
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer s2.Close()
	verifyEntries(t, s2, want)
	// And the store must still accept durable writes.
	if err := s2.Insert(1000, 1); err != nil {
		t.Fatal(err)
	}
}

// TestDurableAutoSnapshot checks WithSnapshotEvery triggers snapshots and
// compaction on its own, and that recovery after that is intact.
func TestDurableAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{
		WithWAL(dir), WithFsync(FsyncAlways),
		WithSnapshotEvery(100), WithWALSegmentBytes(1024),
	}
	s, err := Open(KindEH, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	for i := uint64(0); i < 500; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		want[i] = i
	}
	st := s.Stats()
	if st.SnapshotLSN == 0 {
		t.Fatal("automatic snapshot never triggered")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(KindEH, opts...)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	verifyEntries(t, s2, want)
}

// TestDurableSkipsInvalidSnapshot corrupts the newest snapshot; recovery
// must fall back (here: to pure WAL replay) instead of failing or loading
// garbage.
func TestDurableSkipsInvalidSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithWAL(dir), WithFsync(FsyncAlways)}
	s, err := Open(KindCH, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	for i := uint64(0); i < 200; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		want[i] = i
	}
	d, _ := AsDurable(s)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// No compaction: the full WAL is still present as the fallback.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			path := filepath.Join(dir, e.Name())
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			blob[len(blob)/2] ^= 0xFF
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	s2, err := Open(KindCH, opts...)
	if err != nil {
		t.Fatalf("recovery with corrupt snapshot: %v", err)
	}
	defer s2.Close()
	verifyEntries(t, s2, want)
}

// TestDurableEscapeHatches pins the As* contract with WithWAL: the
// durable wrapper is transparent (one concrete table behind it), and
// only sharding removes the escape hatch.
func TestDurableEscapeHatches(t *testing.T) {
	s, err := Open(KindRadix, WithCapacity(10000), WithWAL(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	m, ok := AsRadixMap(s)
	if !ok {
		t.Fatal("AsRadixMap failed on a durable KindRadix store")
	}
	if v, ok := m.Get(7); !ok || v != 70 {
		t.Fatalf("concrete map Get(7) = %d, %v", v, ok)
	}
	sh, err := Open(KindShortcutEH, WithShards(2), WithWAL(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if _, ok := AsShortcutEH(sh); ok {
		t.Fatal("AsShortcutEH succeeded on a sharded durable store")
	}
}

// TestDurableSnapshotCoversOnlyDurableRecords pins the recovery
// invariant behind Snapshot's pre-sync: under FsyncOff, snapshot, then
// "crash" (copy the dir without closing); the copy's log tail must reach
// the snapshot position, so post-restart appends never reuse LSNs the
// snapshot claims.
func TestDurableSnapshotCoversOnlyDurableRecords(t *testing.T) {
	live := t.TempDir()
	s, err := Open(KindHT, WithWAL(live), WithFsync(FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[uint64]uint64{}
	for i := uint64(0); i < 50; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		want[i] = i
	}
	d, _ := AsDurable(s)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	crashed := t.TempDir()
	copyDir(t, live, crashed)
	s2, err := Open(KindHT, WithWAL(crashed), WithFsync(FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	verifyEntries(t, s2, want)
	st := s2.Stats()
	if st.WALRecords < st.SnapshotLSN {
		t.Fatalf("log position %d fell below snapshot position %d after recovery",
			st.WALRecords, st.SnapshotLSN)
	}
	// New durable writes, another crash-copy, and nothing may vanish.
	if err := s2.Insert(1000, 1); err != nil {
		t.Fatal(err)
	}
	want[1000] = 1
	crashed2 := t.TempDir()
	copyDir(t, crashed, crashed2)
	s3, err := Open(KindHT, WithWAL(crashed2), WithFsync(FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	verifyEntries(t, s3, want)
}

// TestDurableRecoveryHoleDetected pins the loud-failure contract: when
// the newest snapshot is corrupted AFTER its WAL prefix was compacted
// away, the lost records exist nowhere — Open must refuse instead of
// silently serving a keyspace with a hole.
func TestDurableRecoveryHoleDetected(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithWAL(dir), WithFsync(FsyncAlways), WithWALSegmentBytes(512)}
	s, err := Open(KindHT, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	d, _ := AsDurable(s)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if removed, err := d.CompactWAL(); err != nil || removed == 0 {
		t.Fatalf("CompactWAL = %d, %v — need segments actually removed", removed, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			path := filepath.Join(dir, e.Name())
			blob, _ := os.ReadFile(path)
			blob[len(blob)/2] ^= 0xFF
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := Open(KindHT, opts...); err == nil || !strings.Contains(err.Error(), "recovery hole") {
		t.Fatalf("Open over a snapshot/WAL hole = %v, want a recovery-hole error", err)
	}
}

// TestDurableOptionValidation pins the option error paths.
func TestDurableOptionValidation(t *testing.T) {
	if _, err := Open(KindHT, WithWAL("")); err == nil {
		t.Fatal("WithWAL(\"\") accepted")
	}
	if _, err := Open(KindHT, WithWAL(t.TempDir()), WithFsync(FsyncMode(42))); err == nil {
		t.Fatal("unknown fsync mode accepted")
	}
	if _, err := Open(KindHT, WithWAL(t.TempDir()), WithSnapshotEvery(-1)); err == nil {
		t.Fatal("negative WithSnapshotEvery accepted")
	}
	if _, err := Open(KindHT, WithWAL(t.TempDir()), WithWALSegmentBytes(0)); err == nil {
		t.Fatal("zero WithWALSegmentBytes accepted")
	}
	if _, err := ParseFsyncMode("never"); err == nil {
		t.Fatal("ParseFsyncMode accepted an unknown name")
	}
	// Non-durable stores do not expose the management surface.
	s, err := Open(KindHT)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := AsDurable(s); ok {
		t.Fatal("AsDurable succeeded on a store without WithWAL")
	}
}

// TestDurableClosedOps pins the lifecycle: operations after Close fail the
// same way the plain store's do.
func TestDurableClosedOps(t *testing.T) {
	s, err := Open(KindHT, WithWAL(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if err := s.Insert(1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	if ok := s.Delete(1); ok {
		t.Fatal("Delete after Close reported presence")
	}
	d, _ := AsDurable(s)
	if err := d.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close = %v, want ErrClosed", err)
	}
	if _, err := d.CompactWAL(); !errors.Is(err, ErrClosed) {
		t.Fatalf("CompactWAL after Close = %v, want ErrClosed", err)
	}
}

package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"vmshortcut/internal/wire"
)

// statszReply is /statsz's JSON shape: the STATS frame's full reply
// (embedded, so its sections appear at the top level — /statsz is a
// strict superset of the wire STATS payload) plus process runtime
// information no wire client needs.
type statszReply struct {
	wire.StatsReply
	Runtime statszRuntime `json:"runtime"`
}

type statszRuntime struct {
	Goroutines int    `json:"goroutines"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	UptimeSec  int64  `json:"uptime_sec"`
	HeapAlloc  uint64 `json:"heap_alloc_bytes"`
	HeapSys    uint64 `json:"heap_sys_bytes"`
	NumGC      uint32 `json:"num_gc"`
}

// AdminHandler returns the admin HTTP surface served by the -admin
// listener:
//
//	/metrics       Prometheus text exposition of the metrics registry
//	/statsz        JSON superset of the STATS frame (adds runtime info)
//	/tracez        the flight recorder: recent sampled/slow traces with
//	               per-stage spans (?n=, ?sort=recent|slow, ?stage=,
//	               ?min_ms= — see tracezHandler)
//	/healthz       200 while the process serves HTTP at all (liveness)
//	/readyz        200 while Ready(): 503 while draining, and on a
//	               replica past its staleness bound (traffic gate)
//	/debug/pprof/  the standard pprof index, profiles, and traces
//
// The handler is safe to serve while the TCP listener drains — that is
// the point: /readyz flips to 503 at drain start while /metrics stays
// scrapable to the end.
func (s *Server) AdminHandler() http.Handler {
	started := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.metrics == nil {
			http.Error(w, "metrics are not enabled on this server", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		reply := statszReply{
			StatsReply: s.StatsReply(),
			Runtime: statszRuntime{
				Goroutines: runtime.NumGoroutine(),
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				NumCPU:     runtime.NumCPU(),
				GoVersion:  runtime.Version(),
				UptimeSec:  int64(time.Since(started).Seconds()),
				HeapAlloc:  ms.HeapAlloc,
				HeapSys:    ms.HeapSys,
				NumGC:      ms.NumGC,
			},
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reply)
	})
	mux.HandleFunc("/tracez", s.tracezHandler)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			http.Error(w, "not ready (draining, or replica past its staleness bound)",
				http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package server_test

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"vmshortcut/client"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/wire"
	"vmshortcut/server"
)

func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return conn
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSampledOpLandsInFlightRecorder drives the whole client→server
// tracing path: a connection sampling at 1.0 injects a trace-context
// envelope, the server threads it through the batch, and the finished
// trace lands in the flight recorder under the client's trace ID.
func TestSampledOpLandsInFlightRecorder(t *testing.T) {
	m := server.NewMetrics(obs.NewRegistry())
	_, _, addr := startServer(t, server.Config{Metrics: m})

	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetSampling(1)

	if err := c.Put(1, 100); err != nil {
		t.Fatalf("Put: %v", err)
	}
	id := c.LastTraceID()
	if id == 0 {
		t.Fatal("sampling at 1.0 left no trace ID on the connection")
	}
	// The recorder write happens after the reply is flushed; poll briefly.
	var rec obs.TraceRecord
	waitUntil(t, "trace in the recorder", func() bool {
		for _, r := range m.Recorder().Snapshot() {
			if r.ID == id {
				rec = r
				return true
			}
		}
		return false
	})
	if rec.Ops != 1 || rec.Origin != obs.OriginPrimary {
		t.Fatalf("recorded trace = %+v", rec)
	}
	if !rec.Set[obs.StageTotal] || !rec.Set[obs.StageApply] {
		t.Fatalf("trace missing core stages: set=%v", rec.Set)
	}

	// A pipelined burst samples per round trip: the whole coalesced batch
	// carries one trace ID.
	p := c.Pipeline()
	for i := uint64(0); i < 8; i++ {
		p.Put(10+i, i)
	}
	if _, err := p.Flush(nil); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	id = c.LastTraceID()
	waitUntil(t, "pipelined trace in the recorder", func() bool {
		for _, r := range m.Recorder().Snapshot() {
			if r.ID == id && r.Ops > 1 {
				return true
			}
		}
		return false
	})
}

// TestSamplingOffSendsNoEnvelope pins the forward-compatibility story:
// with sampling off (the default), the client's byte stream contains no
// trace-context frames at all, so an old server never sees the new
// opcode. The server's per-opcode frame counter is the witness.
func TestSamplingOffSendsNoEnvelope(t *testing.T) {
	m := server.NewMetrics(obs.NewRegistry())
	_, _, addr := startServer(t, server.Config{Metrics: m})

	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	for i := uint64(0); i < 16; i++ {
		if err := c.Put(i, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Obs == nil {
		t.Fatal("no obs section")
	}
	if n := st.Obs.Frames["trace_ctx"]; n != 0 {
		t.Fatalf("sampling off, but %d trace_ctx frames reached the server", n)
	}
	if c.LastTraceID() != 0 {
		t.Fatalf("sampling off, but LastTraceID = %x", c.LastTraceID())
	}

	c.SetSampling(1)
	if err := c.Put(99, 99); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if st, err = c.Stats(); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if n := st.Obs.Frames["trace_ctx"]; n == 0 {
		t.Fatal("sampling at 1.0 produced no trace_ctx frames")
	}
}

// TestTraceCtxFrameShape pins the envelope's wire semantics against a
// raw connection: it produces no response frame, and a malformed one is
// a protocol error that kills the connection — never a silent skip.
func TestTraceCtxFrameShape(t *testing.T) {
	m := server.NewMetrics(obs.NewRegistry())
	_, _, addr := startServer(t, server.Config{Metrics: m})

	conn := rawDial(t, addr)
	defer conn.Close()
	// Envelope + PUT in one write: exactly one response (the PUT's ack).
	buf := wire.AppendTraceCtx(nil, 0xABCD, wire.TraceFlagSampled)
	buf = wire.AppendPut(buf, 5, 50)
	buf = wire.AppendKey(buf, wire.OpGet, 5)
	if _, err := conn.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	br := bufio.NewReader(conn)
	tag, p, rest, err := wire.ReadFrame(br, nil)
	if err != nil || tag != wire.StatusOK || len(p) != 0 {
		t.Fatalf("first response = (0x%02x, %d bytes, %v), want the empty PUT ack", tag, len(p), err)
	}
	tag, p, _, err = wire.ReadFrame(br, rest)
	if err != nil || tag != wire.StatusOK || len(p) != 8 {
		t.Fatalf("second response = (0x%02x, %d bytes, %v), want the GET value", tag, len(p), err)
	}
	if v := binary.LittleEndian.Uint64(p); v != 50 {
		t.Fatalf("GET after envelope = %d, want 50", v)
	}

	// Truncated envelope payload: visible protocol error.
	bad := rawDial(t, addr)
	defer bad.Close()
	if _, err := bad.Write(wire.AppendFrame(nil, wire.OpTraceCtx, []byte{1, 2, 3})); err != nil {
		t.Fatalf("write: %v", err)
	}
	tag, _, _, err = wire.ReadFrame(bufio.NewReader(bad), nil)
	if err == nil && tag != wire.StatusErr {
		t.Fatalf("malformed envelope answered 0x%02x, want an error (or close)", tag)
	}
}

// TestTracezEndpoint drives /tracez end to end: sampled traffic, then
// the JSON surface with its filters, including the 400s for bad params.
func TestTracezEndpoint(t *testing.T) {
	m := server.NewMetrics(obs.NewRegistry())
	srv, _, addr := startServer(t, server.Config{Metrics: m})

	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetSampling(1)
	for i := uint64(0); i < 4; i++ {
		if err := c.Put(i, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	waitUntil(t, "traces recorded", func() bool {
		return len(m.Recorder().Snapshot()) >= 4
	})

	ts := httptest.NewServer(srv.AdminHandler())
	defer ts.Close()
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body []byte
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		return resp.StatusCode, body
	}

	code, body := get("/tracez?n=2&sort=slow")
	if code != 200 {
		t.Fatalf("/tracez = %d: %s", code, body)
	}
	var reply struct {
		Capacity int `json:"capacity"`
		Recorded int `json:"recorded"`
		Returned int `json:"returned"`
		Traces   []struct {
			TraceID string            `json:"trace_id"`
			Origin  string            `json:"origin"`
			Spans   map[string]uint64 `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("bad /tracez JSON: %v\n%s", err, body)
	}
	if reply.Returned != 2 || reply.Recorded < 4 || reply.Capacity == 0 {
		t.Fatalf("counts = %+v", reply)
	}
	for _, tr := range reply.Traces {
		if tr.TraceID == "" || tr.Origin != "primary" {
			t.Fatalf("trace = %+v", tr)
		}
		if _, ok := tr.Spans["batch_total"]; !ok {
			t.Fatalf("trace missing batch_total span: %+v", tr.Spans)
		}
	}

	// A stage filter that matches nothing returns zero traces, not junk.
	code, body = get("/tracez?stage=follower_apply")
	if code != 200 {
		t.Fatalf("/tracez?stage = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &reply); err != nil || reply.Returned != 0 {
		t.Fatalf("primary-only traces matched follower_apply: %v %+v", err, reply)
	}

	for _, bad := range []string{"?n=0", "?n=x", "?sort=upside-down", "?stage=warp", "?min_ms=-1"} {
		if code, body := get("/tracez" + bad); code != 400 {
			t.Fatalf("/tracez%s = %d, want 400: %s", bad, code, body)
		}
	}
}

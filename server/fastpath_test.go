package server_test

import (
	"testing"

	"vmshortcut"
	"vmshortcut/client"
	"vmshortcut/server"
)

// TestHotkeysStatsSection drives a zipfian-head-shaped read loop against
// a WithReadCache store behind the adaptive coalescer and asserts the
// STATS hotkeys section reports the cache: hit rate, probe counters, and
// the hottest resident keys.
func TestHotkeysStatsSection(t *testing.T) {
	_, st, addr := startServer(t,
		server.Config{BatchWindowAdaptive: true},
		vmshortcut.WithReadCache(true))
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	for i := uint64(0); i < 32; i++ {
		p.Put(i, i+100)
	}
	if _, err := p.Flush(nil); err != nil {
		t.Fatalf("put pipeline: %v", err)
	}
	// The same four keys over and over: the admission sketch must let
	// them in, after which whole batches serve from the cache.
	for round := 0; round < 20; round++ {
		for _, k := range []uint64{1, 2, 3, 4} {
			p.Get(k)
		}
		res, err := p.Flush(nil)
		if err != nil {
			t.Fatalf("get pipeline round %d: %v", round, err)
		}
		for i, r := range res {
			want := uint64(i + 1 + 100)
			if !r.Found || r.Value != want {
				t.Fatalf("round %d entry %d: got (%d, %v), want (%d, true)", round, i, r.Value, r.Found, want)
			}
		}
	}

	reply, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	hk := reply.Hotkeys
	if hk == nil {
		t.Fatal("StatsReply has no hotkeys section for a WithReadCache store")
	}
	if hk.CacheReads == 0 {
		t.Fatalf("no cache-served reads after 20 identical rounds: %+v", hk)
	}
	if hk.HitRate <= 0 || hk.HitRate > 1 {
		t.Fatalf("hit rate out of range: %+v", hk)
	}
	if len(hk.Top) == 0 {
		t.Fatalf("no resident hot keys reported: %+v", hk)
	}
	hot := map[uint64]bool{1: true, 2: true, 3: true, 4: true}
	var matched int
	for _, h := range hk.Top {
		if hot[h.Key] {
			matched++
		}
	}
	if matched == 0 {
		t.Fatalf("none of the driven hot keys made Top: %+v", hk.Top)
	}
	if stStats := st.Stats(); stStats.FastpathCacheReads != hk.CacheReads {
		t.Fatalf("store (%d) and hotkeys section (%d) disagree on cache reads",
			stStats.FastpathCacheReads, hk.CacheReads)
	}

	// A store without a cache must not grow the section.
	_, _, plainAddr := startServer(t, server.Config{})
	pc, err := client.DialConn(plainAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	plain, err := pc.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if plain.Hotkeys != nil {
		t.Fatalf("cache-less store grew a hotkeys section: %+v", plain.Hotkeys)
	}
}

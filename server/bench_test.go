package server

// Internal-package benchmark for the serve path: drives the connState
// handlers directly (no sockets), so -benchmem measures exactly the
// per-request work. The instr=off/instr=on pair is the observability
// layer's zero-allocation acceptance gate — instrumentation must add
// recording work, never allocation.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"vmshortcut"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/op"
	"vmshortcut/internal/wire"
)

// benchAddr satisfies net.Conn just enough for the handlers (RemoteAddr
// for the slow-op log path, deadlines for the coalescer).
type benchConn struct{ net.Conn }

type benchAddr struct{}

func (benchAddr) Network() string { return "bench" }
func (benchAddr) String() string  { return "bench" }

func (benchConn) RemoteAddr() net.Addr            { return benchAddr{} }
func (benchConn) SetReadDeadline(time.Time) error { return nil }
func (benchConn) Read([]byte) (int, error)        { return 0, io.EOF }
func (benchConn) Write(p []byte) (int, error)     { return len(p), nil }
func (benchConn) Close() error                    { return nil }

func newBenchState(b *testing.B, instr bool) *connState {
	store, err := vmshortcut.Open(vmshortcut.KindShortcutEH)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	cfg := Config{Store: store}
	if instr {
		cfg.Metrics = NewMetrics(obs.NewRegistry())
		cfg.SlowOp = 10 * time.Second // never fires in-process
	}
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st := &connState{
		srv:   srv,
		c:     benchConn{},
		br:    bufio.NewReader(bytes.NewReader(nil)),
		bw:    bufio.NewWriter(io.Discard),
		instr: srv.metrics != nil,
	}
	if st.instr {
		st.batch.SetTrace(&st.trace)
	}
	return st
}

// serveOne runs one loop iteration's worth of handler work for a frame,
// mirroring serveConn's per-frame sequence (minus the blocking read).
func serveOne(b *testing.B, st *connState, tag byte, payload []byte) {
	if st.instr {
		st.start = time.Now()
		st.trace.Reset()
		st.traced = false
		st.srv.metrics.countFrame(tag)
	}
	st.resp = st.resp[:0]
	var err error
	switch tag {
	case wire.OpGet, wire.OpPut, wire.OpDel:
		err = st.singles(tag, payload)
	default:
		err = st.batchFrame(tag, payload)
	}
	if err != nil {
		b.Fatal(err)
	}
	var wstart time.Time
	if st.instr {
		wstart = time.Now()
	}
	st.bw.Write(st.resp)
	st.bw.Flush()
	if st.instr && st.traced {
		st.trace.Set(obs.StageReplyWrite, time.Since(wstart))
		st.trace.Set(obs.StageTotal, time.Since(st.start))
		st.srv.finishBatch(st)
	}
}

// BenchmarkServe measures per-request serve-path cost with and without
// instrumentation, for single-op PUT frames and mixed batch frames.
// Compare allocs/op between the instr=off and instr=on variants: the
// observability layer must not add any.
func BenchmarkServe(b *testing.B) {
	var putPayload [16]byte
	mixed := buildMixedFrame(b)
	for _, mode := range []struct {
		name  string
		instr bool
	}{{"instr=off", false}, {"instr=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.Run("put", func(b *testing.B) {
				st := newBenchState(b, mode.instr)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					binary.LittleEndian.PutUint64(putPayload[:], uint64(i)%4096)
					binary.LittleEndian.PutUint64(putPayload[8:], uint64(i))
					serveOne(b, st, wire.OpPut, putPayload[:])
				}
			})
			b.Run("mixedbatch32", func(b *testing.B) {
				st := newBenchState(b, mode.instr)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					serveOne(b, st, wire.OpMixedBatch, mixed)
				}
			})
		})
	}
}

// buildMixedFrame encodes one 32-op mixed batch payload (16 gets, 16
// puts) the way the wire client does.
func buildMixedFrame(b *testing.B) []byte {
	b.Helper()
	var mb op.Batch
	for i := uint64(0); i < 16; i++ {
		mb.Get(i)
		mb.Put(i, i*3)
	}
	frame := wire.AppendMixedBatch(nil, &mb)
	// Strip the header: handlers receive the payload only.
	return frame[wire.HeaderSize:]
}

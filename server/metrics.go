package server

import (
	"fmt"
	"time"

	"vmshortcut"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/wire"
)

// Metrics is one server's observability surface: the per-stage pipeline
// histograms, per-opcode frame counters, per-kind op counters, the
// slow-op counter and its log rate limiter, plus render-time bindings
// (CounterFunc/GaugeFunc) for the server's, store's, WAL's, and
// replication's pre-existing counters. Create one per server with
// NewMetrics and pass it via Config.Metrics; the registry it wraps is
// what /metrics and /statsz render.
//
// Everything the request path touches — stage histograms, frame and op
// counters — is a pre-registered series recorded with atomic adds only:
// no allocation, no locks, no map lookups per op.
type Metrics struct {
	reg      *obs.Registry
	pipeline *obs.Pipeline

	slowOps     *obs.Counter
	slowLimiter *obs.Limiter

	// recorder is the flight recorder behind /tracez: sampled and slow
	// batches' span records, plus follower apply spans merged in over the
	// replication stream.
	recorder *obs.Recorder

	// frames is indexed by wire opcode; nil entries (unknown opcodes
	// never reach the counters) are safe to Inc.
	frames [256]*obs.Counter

	// opsByKind counts applied operations by kind: gets, puts, dels.
	opsGet *obs.Counter
	opsPut *obs.Counter
	opsDel *obs.Counter
}

// frameOpNames maps request opcodes to their metric label, in the fixed
// registration (and exposition) order.
var frameOpNames = []struct {
	code byte
	name string
}{
	{wire.OpGet, "get"},
	{wire.OpPut, "put"},
	{wire.OpDel, "del"},
	{wire.OpGetBatch, "get_batch"},
	{wire.OpPutBatch, "put_batch"},
	{wire.OpDelBatch, "del_batch"},
	{wire.OpMixedBatch, "mixed_batch"},
	{wire.OpStats, "stats"},
	{wire.OpReplSync, "repl_sync"},
	{wire.OpPromote, "promote"},
	{wire.OpTraceCtx, "trace_ctx"},
}

// recorderSize is the flight-recorder ring capacity: generous enough
// that a follower's apply span returning over the stream still finds its
// trace under a sampled load burst.
const recorderSize = 512

// NewMetrics creates the server's metric set in reg. Bindings to a
// specific server (its counters, store, and replication endpoints) are
// added when the Metrics value is passed to New via Config.Metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{reg: reg}
	m.pipeline = obs.NewPipeline(reg)
	for _, f := range frameOpNames {
		m.frames[f.code] = reg.Counter(
			`eh_frames_total{op="`+f.name+`"}`,
			"Request frames decoded, by opcode.")
	}
	m.opsGet = reg.Counter(`eh_ops_applied_total{kind="get"}`, "Operations applied, by kind.")
	m.opsPut = reg.Counter(`eh_ops_applied_total{kind="put"}`, "")
	m.opsDel = reg.Counter(`eh_ops_applied_total{kind="del"}`, "")
	m.slowOps = reg.Counter("eh_slow_ops_total",
		"Batches whose end-to-end server time exceeded the slow-op threshold.")
	// The slow-op LOG is rate-limited (5/s, burst 10, suppressed count
	// carried on the next line); the counter above is not.
	m.slowLimiter = obs.NewLimiter(5, 10)
	m.recorder = obs.NewRecorder(recorderSize)
	return m
}

// Recorder returns the flight recorder (what /tracez renders and the
// replication source merges follower spans into).
func (m *Metrics) Recorder() *obs.Recorder {
	if m == nil {
		return nil
	}
	return m.recorder
}

// Registry returns the registry the metrics render into.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Pipeline returns the stage histogram set.
func (m *Metrics) Pipeline() *obs.Pipeline { return m.pipeline }

// countFrame bumps the per-opcode frame counter.
func (m *Metrics) countFrame(tag byte) {
	m.frames[tag].Inc() // nil-safe for unknown opcodes
}

// bindServer registers render-time bindings for s's own counters and the
// subsystems reachable from it. Called once, from New.
func (m *Metrics) bindServer(s *Server) {
	reg := m.reg
	reg.GaugeFunc("eh_conns_active", "Currently open client connections.",
		func() float64 { return float64(s.activeConns.Load()) })
	reg.CounterFunc("eh_conns_total", "Lifetime accepted connections.", s.totalConns.Load)
	reg.CounterFunc("eh_ops_total", "Operations served (batch frames count each element).", s.ops.Load)
	reg.CounterFunc("eh_frames_read_total", "Request frames decoded.", s.frames.Load)
	reg.CounterFunc("eh_coalesced_batches_total",
		"Store batch calls produced by gathering pipelined single-op frames.", s.coalescedBatches.Load)
	reg.CounterFunc("eh_coalesced_ops_total",
		"Operations carried by coalesced batches.", s.coalescedOps.Load)
	reg.CounterFunc("eh_errors_total", "StatusErr responses sent.", s.errors.Load)
	reg.CounterFunc(`eh_rejects_total{reason="read_only"}`,
		"Replica refusals, by reason.", s.readOnlyRejects.Load)
	reg.CounterFunc(`eh_rejects_total{reason="stale"}`, "", s.staleRejects.Load)
	reg.GaugeFunc("eh_ready", "1 when serving (not draining, not stale), else 0.",
		func() float64 { return boolGauge(s.Ready()) })

	// Read fast path: GET entries partitioned by how the store served
	// them. The counters live in the store (summed across shards); these
	// bindings read them at render time only.
	reg.CounterFunc(`eh_read_fastpath_total{level="cache"}`,
		"Pure-GET entries by serving level: hot-key cache, seqlock-validated lock-free read, or under the read lock.",
		func() uint64 { return s.store.Stats().FastpathCacheReads })
	reg.CounterFunc(`eh_read_fastpath_total{level="seqlock"}`, "",
		func() uint64 { return s.store.Stats().FastpathSeqlockReads })
	reg.CounterFunc(`eh_read_fastpath_total{level="locked"}`, "",
		func() uint64 { return s.store.Stats().FastpathLockedReads })
	reg.CounterFunc("eh_read_cache_misses_total",
		"Hot-key cache probes that fell through to the index.",
		func() uint64 { return s.store.Stats().CacheMisses })
	reg.CounterFunc("eh_seqlock_retries_total",
		"Optimistic read passes discarded because a writer moved the sequence counter.",
		func() uint64 { return s.store.Stats().SeqlockRetries })
	reg.CounterFunc("eh_seqlock_fallbacks_total",
		"Pure-GET batches that exhausted seqlock retries and took the lock.",
		func() uint64 { return s.store.Stats().SeqlockFallbacks })
	reg.GaugeFunc("eh_read_cache_hit_rate",
		"Lifetime hot-key cache hit rate: hits / (hits + misses); 0 with no probes.",
		func() float64 {
			st := s.store.Stats()
			if probes := st.FastpathCacheReads + st.CacheMisses; probes > 0 {
				return float64(st.FastpathCacheReads) / float64(probes)
			}
			return 0
		})

	if _, ok := vmshortcut.AsDurable(s.store); ok {
		stat := func(f func(vmshortcut.Stats) float64) func() float64 {
			return func() float64 { return f(s.store.Stats()) }
		}
		reg.CounterFunc("eh_wal_records_total", "WAL records appended.",
			func() uint64 { return s.store.Stats().WALRecords })
		reg.CounterFunc("eh_wal_syncs_total", "WAL fsync calls issued.",
			func() uint64 { return s.store.Stats().WALSyncs })
		reg.GaugeFunc("eh_wal_durable_lsn", "Highest log position known durable.",
			stat(func(st vmshortcut.Stats) float64 { return float64(st.DurableLSN) }))
		reg.GaugeFunc("eh_wal_snapshot_lsn", "Newest snapshot's covered position.",
			stat(func(st vmshortcut.Stats) float64 { return float64(st.SnapshotLSN) }))
		reg.GaugeFunc("eh_wal_segments", "Live WAL segment files.",
			stat(func(st vmshortcut.Stats) float64 { return float64(st.WALSegments) }))
		reg.GaugeFunc("eh_wal_bytes", "Total size of live WAL segments.",
			stat(func(st vmshortcut.Stats) float64 { return float64(st.WALBytes) }))
	}

	if rs := s.cfg.Repl; rs != nil {
		reg.GaugeFunc("eh_repl_followers", "Connected replication streams.",
			func() float64 { return float64(rs.Counters().Followers) })
		reg.GaugeFunc("eh_repl_sync_mode", "1 under synchronous replication.",
			func() float64 { return boolGauge(rs.Counters().SyncMode) })
		reg.GaugeFunc("eh_repl_last_lsn", "Primary log position.",
			func() float64 { return float64(rs.Counters().LastLSN) })
		reg.GaugeFunc("eh_repl_min_acked_lsn",
			"Lowest position all connected followers acknowledged.",
			func() float64 { return float64(rs.Counters().MinAckedLSN) })
		reg.CounterFunc("eh_repl_records_shipped_total", "Records streamed to followers.",
			func() uint64 { return rs.Counters().RecordsShipped })
		reg.CounterFunc("eh_repl_bytes_shipped_total", "Bytes streamed to followers.",
			func() uint64 { return rs.Counters().BytesShipped })
		reg.CounterFunc("eh_repl_snapshots_shipped_total", "Full syncs served.",
			func() uint64 { return rs.Counters().SnapshotsShipped })
		reg.CounterFunc("eh_repl_sync_timeouts_total",
			"Writes acknowledged after the sync-replication wait degraded.",
			func() uint64 { return rs.Counters().SyncTimeouts })
		reg.GaugeFunc("eh_repl_lag_records",
			"Records the slowest connected follower has not yet acknowledged.",
			func() float64 { return float64(rs.Counters().LagRecords) })
		reg.GaugeFunc("eh_repl_lag_ms",
			"Append-to-ack time lag of the most recent acknowledgement, ms (-1: unknown).",
			func() float64 { return float64(rs.Counters().LagMS) })
	}

	if rp := s.cfg.Replica; rp != nil {
		reg.GaugeFunc("eh_replica_connected", "1 while attached to the primary.",
			func() float64 { return boolGauge(rp.Counters().Connected) })
		reg.GaugeFunc("eh_replica_stale", "1 while reads are refused as stale.",
			func() float64 { return boolGauge(rp.Counters().Stale) })
		reg.GaugeFunc("eh_replica_promoted", "1 after promotion to primary.",
			func() float64 { return boolGauge(rp.Counters().Promoted) })
		reg.GaugeFunc("eh_replica_applied_lsn", "Primary log position applied locally.",
			func() float64 { return float64(rp.Counters().AppliedLSN) })
		reg.GaugeFunc("eh_replica_primary_lsn", "Primary's position at last heartbeat.",
			func() float64 { return float64(rp.Counters().PrimaryLSN) })
		reg.GaugeFunc("eh_replica_last_contact_ms",
			"Milliseconds since the primary was heard from (-1: never).",
			func() float64 { return float64(rp.Counters().LastContactMS) })
		reg.CounterFunc("eh_replica_records_applied_total", "Replicated records applied.",
			func() uint64 { return rp.Counters().RecordsApplied })
		reg.CounterFunc("eh_replica_full_syncs_total", "Full snapshot syncs performed.",
			func() uint64 { return rp.Counters().FullSyncs })
		reg.CounterFunc("eh_replica_reconnects_total", "Reconnects to the primary.",
			func() uint64 { return rp.Counters().Reconnects })
		reg.GaugeFunc("eh_replica_lag_records",
			"Records known shipped by the primary but not yet applied here.",
			func() float64 { return float64(rp.Counters().LagRecords) })
		reg.GaugeFunc("eh_replica_lag_ms",
			"Append-to-apply time lag of the most recently applied record, ms (-1: unknown).",
			func() float64 { return float64(rp.Counters().LagMS) })
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// countApplied records a finished batch's per-kind op counts (three
// atomic adds, not per-op work).
func (m *Metrics) countApplied(gets, puts, dels int) {
	if gets > 0 {
		m.opsGet.Add(uint64(gets))
	}
	if puts > 0 {
		m.opsPut.Add(uint64(puts))
	}
	if dels > 0 {
		m.opsDel.Add(uint64(dels))
	}
}

// obsStats renders the observability section of the STATS reply: stage
// summaries (only stages that have recorded), frame counts by opcode,
// and the slow-op count.
func (m *Metrics) obsStats() *wire.ObsStats {
	out := &wire.ObsStats{
		Stages:  make(map[string]wire.HistSummary),
		Frames:  make(map[string]uint64),
		SlowOps: m.slowOps.Load(),
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		h := m.pipeline.Hist(s).Snapshot()
		if h.Count() == 0 {
			continue
		}
		out.Stages[s.String()] = wire.HistSummary{
			Count:  h.Count(),
			MeanNS: h.Mean(),
			P50NS:  h.Percentile(50),
			P95NS:  h.Percentile(95),
			P99NS:  h.Percentile(99),
			MaxNS:  h.Max(),
		}
	}
	for _, f := range frameOpNames {
		if n := m.frames[f.code].Load(); n > 0 {
			out.Frames[f.name] = n
		}
	}
	return out
}

// slowOp handles one batch that crossed the slow-op threshold: count it
// always, log it rate-limited with the per-stage breakdown and — when the
// request carried a sampled trace context — the trace ID, so the log line
// can be looked up at /tracez. The formatting (and its boxing of
// arguments) happens only after the limiter admits the line, so the hot
// path never pays for it.
func (m *Metrics) slowOp(s *Server, remote string, ops int, total time.Duration, traceID uint64, tr *obs.Trace) {
	m.slowOps.Inc()
	if s.cfg.Logf == nil {
		return
	}
	ok, suppressed := m.slowLimiter.Allow(time.Now())
	if !ok {
		return
	}
	trace := ""
	if traceID != 0 {
		trace = fmt.Sprintf(" trace=%016x", traceID)
	}
	s.logf("server: slow op: conn=%s ops=%d total=%v%s [%s]%s",
		remote, ops, total, trace, tr.Breakdown(), obs.FormatSuppressed(suppressed))
}

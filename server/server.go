// Package server turns a vmshortcut.Store into a network KV service: a
// TCP server speaking the compact length-prefixed binary protocol of
// internal/wire (GET/PUT/DEL/STATS plus native batch frames) with full
// pipelining.
//
// The serving layer is built around the same observation as the store's
// batch API: per-operation overhead — here a syscall, a frame decode, and
// a routing decision per request — dominates small key-value ops, and
// batching amortizes it. Each connection runs a coalescer: pipelined
// single-op requests of ANY kind — those already buffered, plus any that
// arrive within Config.BatchWindow — are gathered in request order into
// one mixed operation batch (internal/op.Batch, the representation every
// layer below shares) and executed as ONE Store.ApplyBatch call: one
// lock acquisition, one sharded fan-out pass, and — on a durable store —
// one WAL record whose payload is the batch's own encoding, appended
// without re-packing. Native batch frames (GETBATCH/PUTBATCH/DELBATCH/
// MIXEDBATCH) take the same path: the frame payload decodes directly
// into the batch and, for mutations, IS the bytes the log appends.
// Responses are written in request order, so clients cannot observe the
// coalescing.
//
// Error fan-out: a coalesced batch (or a MIXEDBATCH frame) that fails —
// a rejected insert, a closed store, a log append failure — fails as a
// unit: every entry gathered into it is answered with StatusErr, because
// on a durable store a partially acknowledged batch could ack a mutation
// whose log record was never written.
//
// Shutdown drains: accepting stops, connections finish every request that
// has already arrived, and pending responses are flushed before the
// connections close.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut"
	"vmshortcut/internal/obs"
	"vmshortcut/internal/op"
	"vmshortcut/internal/wire"
)

// DefaultMaxBatch caps how many pipelined single-op requests one
// coalesced store call may carry.
const DefaultMaxBatch = 1024

// DefaultAdaptiveWindow is the adaptive coalescer's window ceiling when
// Config.BatchWindow does not set one.
const DefaultAdaptiveWindow = 100 * time.Microsecond

// adaptiveMinWindow is the smallest non-zero adaptive window: widening
// starts here, and collapsing below it lands on zero (no wait at all).
const adaptiveMinWindow = 5 * time.Microsecond

// adaptiveProbeMaxGap caps the probe backoff: after a probed window
// expires without gathering anything, the connection serves at least
// this many window-less rounds (doubling up from adaptiveProbeMinGap)
// before arming the next probe, so closed-loop clients pay the wasted
// wait a vanishing fraction of the time.
const adaptiveProbeMaxGap = 512

// adaptiveProbeMinGap is the backoff's starting gap.
const adaptiveProbeMinGap = 4

// Config configures a Server. Store is the only required field.
type Config struct {
	// Store answers every request. The server does not close it: the
	// caller owns the store's lifecycle (cmd/ehserver closes it after
	// Shutdown has drained). It must be safe for concurrent use
	// (WithConcurrency or WithShards) when more than one connection is
	// expected.
	//
	// Durability rides on the store, not the server: with a store opened
	// via WithWAL, every InsertBatch/DeleteBatch returns only after the
	// mutation is logged (and, under FsyncAlways, fsynced), and the
	// server writes a response only after the store call returns — so a
	// client that has read its ack holds a durable write, and the
	// coalescer's batching makes that one group-committed fsync per
	// gathered batch rather than per op.
	Store vmshortcut.Store

	// BatchWindow is how long a connection's coalescer waits for further
	// pipelined single-op requests — of any kind; the gathered batch is a
	// mixed operation batch — before executing it. 0 (the default) never
	// waits: only requests already buffered on the connection coalesce,
	// which adds no latency. A positive window trades up to that much
	// added latency for larger batches — worthwhile for clients that
	// dribble requests.
	BatchWindow time.Duration

	// BatchWindowAdaptive makes the coalescing window self-tuning per
	// connection instead of fixed. The signal is the outcome of each
	// armed wait, not batch depth: the window widens (doubling, up to
	// BatchWindow — or DefaultAdaptiveWindow when BatchWindow is 0) only
	// while rounds fill to MaxBatch with every armed wait cut short by
	// arriving data, i.e. a dense open-loop stream the window is
	// stitching without ever timing out; any round that ends on a wait
	// that expired without a byte — the closed-loop signature, where the
	// client sends nothing until it sees replies — collapses the window
	// to zero and backs off exponentially before probing again.
	// Connections whose bursts arrive whole — and idle or dribbling
	// connections — therefore converge to paying no window at all.
	BatchWindowAdaptive bool

	// MaxBatch caps the ops per coalesced store call (default
	// DefaultMaxBatch, hard-capped at wire.MaxMixedBatch so a gathered
	// batch always fits one mixed payload — and so one WAL record).
	MaxBatch int

	// Logf receives accept/connection errors; nil discards them.
	Logf func(format string, args ...any)

	// Repl, when non-nil, makes this server a replication primary: a
	// connection that sends REPLSYNC is handed over to Repl.ServeConn and
	// becomes a record stream, and — when Repl.SyncMode reports true —
	// every mutation's acknowledgement is held until a connected follower
	// acknowledged it (Repl.WaitShipped). Implemented by repl.Source.
	//
	// Assign only a concrete non-nil value: a typed-nil interface here
	// would pass the nil checks and panic on first use.
	Repl ReplSource

	// Replica, when non-nil, makes this server a read replica: mutations
	// are refused with StatusReadOnly until Replica.WritesAllowed (a
	// promoted replica serves writes), reads are refused with StatusStale
	// while Replica.Stale (the replica lost its primary beyond its
	// staleness bound), and an OpPromote frame triggers
	// Replica.Promote. Implemented by repl.Follower.
	Replica Replica

	// Metrics, when non-nil, enables the observability layer: per-stage
	// latency histograms, per-opcode frame counters, and render-time
	// bindings for the server's own counters in the Metrics' registry
	// (served by the admin listener's /metrics and /statsz). The request
	// path records into pre-registered series with atomic adds only — no
	// allocation per op. Nil disables all instrumentation at zero cost.
	Metrics *Metrics

	// SlowOp is the slow-op log threshold: a batch whose end-to-end
	// server time (StageTotal) meets or exceeds it emits one structured
	// log line with the per-stage breakdown, rate-limited (and counted in
	// eh_slow_ops_total, unlimited). 0 disables. Requires Metrics.
	SlowOp time.Duration
}

// ReplSource is the primary side of replication as the server sees it:
// a stream handler for follower connections plus the synchronous-
// replication write gate. Implemented by repl.Source; declared here so
// the server does not depend on the repl package.
type ReplSource interface {
	// ServeConn runs a replication stream on a connection whose REPLSYNC
	// handshake requested records after fromLSN. The server's request
	// loop has exited; ServeConn owns the connection's traffic until it
	// returns, but must not close the connection (the server does).
	ServeConn(c net.Conn, br *bufio.Reader, bw *bufio.Writer, fromLSN uint64, flags byte) error
	// SyncMode reports synchronous replication; when true the server
	// calls WaitShipped after each mutation and before its response.
	SyncMode() bool
	// WaitShipped blocks until a connected follower acknowledged lsn,
	// degrading per its own policy; it must not block unboundedly.
	WaitShipped(lsn uint64) bool
	// LastLSN is the log position to wait for after a mutation.
	LastLSN() uint64
	// Counters snapshots the primary-side stats section.
	Counters() *wire.PrimaryReplCounters
}

// Replica is the follower side of replication as the server sees it:
// the gates that turn a server into a read replica, and promotion.
// Implemented by repl.Follower; declared here so the server does not
// depend on the repl package.
type Replica interface {
	// WritesAllowed reports whether mutations may be served; false until
	// the replica is promoted.
	WritesAllowed() bool
	// Stale reports whether reads must be refused because the primary
	// has been silent beyond the configured staleness bound.
	Stale() bool
	// Promote stops replication and returns the last applied primary
	// LSN; after it returns, WritesAllowed must report true.
	Promote() uint64
	// Counters snapshots the replica-side stats section.
	Counters() *wire.ReplicaReplCounters
}

// Server serves the wire protocol from a Store. Create with New, start
// with Serve or ListenAndServe, stop with Shutdown (graceful) or Close.
type Server struct {
	cfg     Config
	store   vmshortcut.Store
	metrics *Metrics

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	draining atomic.Bool
	closed   atomic.Bool

	activeConns      atomic.Int64
	totalConns       atomic.Uint64
	ops              atomic.Uint64
	frames           atomic.Uint64
	coalescedBatches atomic.Uint64
	coalescedOps     atomic.Uint64
	errors           atomic.Uint64
	readOnlyRejects  atomic.Uint64
	staleRejects     atomic.Uint64
}

// gateState is what the replica gates allow a request to do right now.
type gateState int

const (
	// gateOpen serves everything: not a replica, or a promoted one.
	gateOpen gateState = iota
	// gateReadOnly serves reads and refuses mutations (StatusReadOnly).
	gateReadOnly
	// gateStale refuses reads too (StatusStale): the primary has been
	// silent beyond the replica's staleness bound, so even reads could
	// be arbitrarily old. Mutations still answer StatusReadOnly — the
	// more actionable refusal.
	gateStale
)

// gate reports what the current request may do on this server.
func (s *Server) gate() gateState {
	rp := s.cfg.Replica
	if rp == nil || rp.WritesAllowed() {
		return gateOpen
	}
	if rp.Stale() {
		return gateStale
	}
	return gateReadOnly
}

// waitShipped is the synchronous-replication write gate: after a durable
// mutation, hold its acknowledgement until a connected follower also has
// it. The wait degrades (per the source's policy) rather than stalling
// the write path forever.
func (s *Server) waitShipped() {
	if rs := s.cfg.Repl; rs != nil && rs.SyncMode() {
		rs.WaitShipped(rs.LastLSN())
	}
}

// timedWaitShipped is waitShipped with the wait recorded as
// StageReplAck when instrumentation is on and the gate actually engages.
func (st *connState) timedWaitShipped() {
	rs := st.srv.cfg.Repl
	if rs == nil || !rs.SyncMode() {
		return
	}
	var t0 time.Time
	if st.instr {
		t0 = time.Now()
	}
	rs.WaitShipped(rs.LastLSN())
	if st.instr {
		st.trace.Set(obs.StageReplAck, time.Since(t0))
	}
}

// New creates a Server for cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	// Cap at the mixed-frame element bound: a coalesced batch must stay
	// encodable as one mixed payload, which is what a durable store
	// appends as its WAL record.
	if cfg.MaxBatch > wire.MaxMixedBatch {
		cfg.MaxBatch = wire.MaxMixedBatch
	}
	s := &Server{cfg: cfg, store: cfg.Store, metrics: cfg.Metrics, conns: map[net.Conn]struct{}{}}
	if s.metrics != nil {
		s.metrics.bindServer(s)
	}
	return s, nil
}

// Ready reports whether the server should receive traffic: false while
// draining, and false on a replica whose reads are stale-gated (the
// primary has been silent past the staleness bound). This is what the
// admin listener's /readyz serves.
func (s *Server) Ready() bool {
	return !s.draining.Load() && s.gate() != gateStale
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown, Close, or a fatal
// accept error. It blocks; the returned error is nil after a clean stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		// Register and wg.Add under the same lock Shutdown snapshots
		// under, so its wg.Wait can never miss a just-accepted conn.
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.totalConns.Add(1)
		s.activeConns.Add(1)
		go s.serveConn(c)
	}
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting and drains gracefully: every connection
// finishes the requests that have already arrived (including everything
// pipelined in its read buffer), flushes its responses, and closes. A
// request half-received when the deadline fires is dropped with its
// connection. If ctx expires first, remaining connections are closed
// forcibly and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	// Unblock handlers parked in a read: the poked deadline makes the
	// read fail with a timeout, which the handler treats as "drain what
	// is buffered, then exit".
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

// Close stops the server immediately: the listener and every connection
// close without draining. Prefer Shutdown.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.closed.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	s.closeConns()
	s.wg.Wait()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

// Counters snapshots the serving-layer counters into a struct in one
// pass of atomic loads.
//
// Consistency contract: each field is individually exact and monotonic
// (every load is atomic, and every counter only increases; ActiveConns
// is the one gauge and may go down), but the struct is NOT a consistent
// cross-field cut — the counters are read one after another while
// traffic continues, so related fields can disagree transiently. A
// snapshot taken mid-batch may, for example, show CoalescedOps already
// including a batch whose Ops increment it does not yet include, or
// Frames ahead of Ops. Consumers that derive rates must difference two
// snapshots field-by-field (sound, because each field is monotonic) and
// must not assume cross-field identities like CoalescedOps ≤ Ops hold
// exactly at any instant.
func (s *Server) Counters() wire.ServerCounters {
	var c wire.ServerCounters
	c.ActiveConns = uint64(s.activeConns.Load())
	c.TotalConns = s.totalConns.Load()
	c.Ops = s.ops.Load()
	c.Frames = s.frames.Load()
	c.CoalescedBatches = s.coalescedBatches.Load()
	c.CoalescedOps = s.coalescedOps.Load()
	c.Errors = s.errors.Load()
	c.ReadOnlyRejects = s.readOnlyRejects.Load()
	c.StaleRejects = s.staleRejects.Load()
	return c
}

// connState is the per-connection working set: buffered reader/writer,
// the reusable frame payload buffer, and the coalescer's operation batch
// and result arenas — all reused across requests so the steady-state
// request path does not allocate.
type connState struct {
	srv     *Server
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	readBuf []byte
	batch   op.Batch
	res     op.Results
	resp    []byte
	// gets/gres are the read-only gate's side batch: the GET entries of a
	// gathered batch that mixes reads with refused mutations.
	gets op.Batch
	gres op.Results
	// drainBroken is set when Shutdown's deadline poke interrupted the
	// coalescer mid-frame: the gathered complete requests are still
	// answered, but the stream is no longer frame-aligned, so the
	// connection must close right after.
	drainBroken bool

	// Adaptive-window state (Config.BatchWindowAdaptive): win is this
	// connection's current coalescing window, retuned by adaptWindow
	// after every singles round from the outcome flags peekSingle sets —
	// waitHit (an armed wait was cut short by arriving data) and
	// waitExpired (an armed wait timed out empty); probeSkip counts
	// window-less rounds left before the next probe, and probeGap is the
	// backoff that refills it.
	win         time.Duration
	waitHit     bool
	waitExpired bool
	probeSkip   int
	probeGap    int

	// Observability (instr is set once, from Config.Metrics != nil):
	// trace collects the current batch's per-stage durations — it is
	// installed on the batch so the durable layer can fill its stages —
	// start is when the current frame finished reading, and traced marks
	// a loop iteration that executed a store batch (stage histograms
	// only make sense for those).
	instr  bool
	traced bool
	start  time.Time
	trace  obs.Trace

	// Trace context (wire.OpTraceCtx): pendingCtx is the trace ID a just-
	// decoded envelope frame announced for the NEXT request frame;
	// frameCtx is the ID the current frame consumed (0 = unsampled). Two
	// word stores per frame — the flight-recorder write itself happens
	// only for sampled or slow batches.
	pendingCtx uint64
	frameCtx   uint64
}

// serveConn runs one connection's request loop until EOF, a protocol
// error, or drain.
func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.activeConns.Add(-1)
		s.wg.Done()
	}()
	st := &connState{
		srv:   s,
		c:     c,
		br:    bufio.NewReaderSize(c, 64<<10),
		bw:    bufio.NewWriterSize(c, 64<<10),
		instr: s.metrics != nil,
	}
	if st.instr {
		// The trace rides on the batch so layers that only see the batch
		// (the durable store) can fill their stages; installed once — the
		// batch's Reset keeps it.
		st.batch.SetTrace(&st.trace)
	}
	for {
		// Drain check before blocking: Shutdown's deadline poke could be
		// swallowed by the coalescer clearing its batch-window deadline,
		// so the flag is re-read here, where the connection is about to
		// park with nothing buffered.
		if s.draining.Load() && st.br.Buffered() == 0 {
			st.bw.Flush()
			return
		}
		tag, payload, buf, err := wire.ReadFrame(st.br, st.readBuf)
		st.readBuf = buf
		if err != nil {
			// A drain poke surfaces as a timeout; everything the client
			// had pipelined is already processed (the loop drains the
			// buffer before blocking), so flush and exit.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && s.draining.Load() {
				st.bw.Flush()
				return
			}
			if !isClosedErr(err) {
				s.logf("server: conn %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		s.frames.Add(1)
		if st.instr {
			st.start = time.Now()
			st.trace.Reset()
			st.traced = false
			s.metrics.countFrame(tag)
		}
		st.resp = st.resp[:0]
		// The trace context an envelope announced applies to exactly this
		// frame; a context followed by anything untraceable (STATS, another
		// envelope) is dropped rather than left armed.
		st.frameCtx, st.pendingCtx = st.pendingCtx, 0
		switch tag {
		case wire.OpGet, wire.OpPut, wire.OpDel:
			err = st.singles(tag, payload)
		case wire.OpGetBatch, wire.OpPutBatch, wire.OpDelBatch, wire.OpMixedBatch:
			err = st.batchFrame(tag, payload)
		case wire.OpStats:
			err = st.statsReply()
		case wire.OpReplSync:
			// The connection leaves the request/response regime for good:
			// replStream runs it as a replication stream until it ends,
			// and serveConn's defer closes it.
			st.replStream(payload)
			return
		case wire.OpPromote:
			err = st.promoteReply()
		case wire.OpTraceCtx:
			// Trace-context envelope: stash the ID for the next frame and
			// answer nothing — the envelope has no response frame, so the
			// response section below writes zero bytes for this iteration.
			err = st.traceCtx(payload)
		default:
			err = fmt.Errorf("unknown opcode 0x%02x", tag)
		}
		if err != nil {
			// Malformed frame: the stream can no longer be trusted to be
			// frame-aligned. Answer with an error frame and close.
			s.errors.Add(1)
			st.bw.Write(wire.AppendError(st.resp[:0], err.Error()))
			st.bw.Flush()
			s.logf("server: conn %s: %v", c.RemoteAddr(), err)
			return
		}
		// Reply write, then flush when the pipeline is (momentarily)
		// empty — batching the flush across pipelined requests is the
		// write-side half of the amortization — or when the drain broke
		// the stream. The whole write+flush span is StageReplyWrite.
		var wstart time.Time
		if st.instr {
			wstart = time.Now()
		}
		_, werr := st.bw.Write(st.resp)
		flushed := false
		if werr == nil && (st.drainBroken || st.br.Buffered() == 0) {
			werr = st.bw.Flush()
			flushed = true
		}
		if st.instr && st.traced {
			st.trace.Set(obs.StageReplyWrite, time.Since(wstart))
			st.trace.Set(obs.StageTotal, time.Since(st.start))
			s.finishBatch(st)
		}
		if werr != nil || st.drainBroken {
			return
		}
		if flushed && s.draining.Load() {
			return
		}
	}
}

// finishBatch folds a finished batch's trace into the stage histograms,
// bumps the per-kind op counters, writes the flight-recorder entry for
// sampled or slow batches, and applies the slow-op threshold. Only
// called with instrumentation on and for iterations that executed a
// store batch.
func (s *Server) finishBatch(st *connState) {
	m := s.metrics
	m.pipeline.RecordTrace(&st.trace)
	m.countApplied(st.batch.Gets(), st.batch.Puts(), st.batch.Dels())
	total := time.Duration(st.trace.Get(obs.StageTotal))
	slow := s.cfg.SlowOp > 0 && total >= s.cfg.SlowOp
	id := st.batch.TraceID()
	if id != 0 || slow {
		// Client-sampled batches always land in the flight recorder; slow
		// batches land even unsampled (ID 0) — the server-side half of
		// "always sample on slow".
		rec := obs.TraceRecord{
			ID:      id,
			StartNS: st.start.UnixNano(),
			Origin:  obs.OriginPrimary,
			Slow:    slow,
			Ops:     st.batch.Len(),
			LSN:     st.batch.LSN(),
		}
		rec.FromTrace(&st.trace)
		m.recorder.Record(rec)
	}
	if slow {
		m.slowOp(s, st.c.RemoteAddr().String(), st.batch.Len(), total, id, &st.trace)
	}
}

// traceCtx decodes a trace-context envelope and arms it for the next
// frame. The envelope is accepted (and simply dropped) even with
// instrumentation off, so a sampling client can talk to a metrics-less
// server of the same protocol revision.
func (st *connState) traceCtx(payload []byte) error {
	id, flags, err := wire.DecodeTraceCtx(payload)
	if err != nil {
		return err
	}
	if st.instr && flags&wire.TraceFlagSampled != 0 && id != 0 {
		st.pendingCtx = id
	}
	return nil
}

// singles handles a single-op request frame and coalesces: every
// pipelined single-op frame — GET, PUT, and DEL alike, those already
// buffered plus any that arrive within BatchWindow — is gathered in
// request order (up to MaxBatch) into one mixed operation batch and
// executed as ONE ApplyBatch call. Responses are appended in request
// order, so the wire contract is indistinguishable from serial
// execution; a kind switch in the pipeline no longer breaks the batch.
func (st *connState) singles(tag byte, payload []byte) error {
	var t0 time.Time
	if st.instr {
		st.traced = true
		t0 = time.Now()
	}
	st.batch.Reset()
	st.batch.SetTraceID(st.frameCtx)
	if err := st.appendSingle(tag, payload); err != nil {
		return err
	}
	if st.instr {
		// The first frame's decode is StageDecode; the gather loop below
		// — including reads of further pipelined frames and any
		// batch-window wait — is StageCoalesce.
		now := time.Now()
		st.trace.Set(obs.StageDecode, now.Sub(t0))
		t0 = now
	}
	for st.batch.Len() < st.srv.cfg.MaxBatch && st.peekSingle() {
		tag, p, buf, err := wire.ReadFrame(st.br, st.readBuf)
		st.readBuf = buf
		if err != nil {
			// Shutdown's deadline poke can land while a frame's body is
			// still in flight: the header was consumed, so the stream is
			// broken — but the requests gathered so far are complete and
			// must still be answered before the connection closes.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && st.srv.draining.Load() {
				st.drainBroken = true
				break
			}
			return fmt.Errorf("reading pipelined frame: %w", err)
		}
		st.srv.frames.Add(1)
		if st.instr {
			st.srv.metrics.countFrame(tag)
		}
		if err := st.appendSingle(tag, p); err != nil {
			return err
		}
	}

	n := st.batch.Len()
	if st.srv.cfg.BatchWindowAdaptive {
		st.adaptWindow(n)
	}
	st.srv.ops.Add(uint64(n))
	if n > 1 {
		st.srv.coalescedBatches.Add(1)
		st.srv.coalescedOps.Add(uint64(n))
		if st.instr {
			st.trace.Set(obs.StageCoalesce, time.Since(t0))
		}
	}
	if g := st.srv.gate(); g == gateStale || (g == gateReadOnly && st.batch.Mutations() > 0) {
		return st.gatedSingles(g)
	}
	if st.instr {
		t0 = time.Now()
	}
	err := st.srv.store.ApplyBatch(&st.batch, &st.res)
	if st.instr && st.trace.Get(obs.StageApply) == 0 {
		// The durable layer splits its span into StageApply and
		// StageWALAppend through the batch's trace; when it did not run
		// (non-durable store, or a pure-read batch it passes through),
		// the whole store call is the apply stage.
		st.trace.Set(obs.StageApply, time.Since(t0))
	}
	if err != nil {
		// Unit failure: nothing in the batch may be acknowledged (see the
		// package comment), so every gathered request answers the error.
		st.srv.errors.Add(uint64(n))
		for i := 0; i < n; i++ {
			st.resp = wire.AppendError(st.resp, err.Error())
		}
		return nil
	}
	if st.batch.Mutations() > 0 {
		st.timedWaitShipped()
	}
	for i, kind := range st.batch.Kinds() {
		switch kind {
		case op.Get:
			if st.res.Found[i] {
				st.resp = wire.AppendValue(st.resp, st.res.Vals[i])
			} else {
				st.resp = wire.AppendEmpty(st.resp, wire.StatusNotFound)
			}
		case op.Put:
			st.resp = wire.AppendEmpty(st.resp, wire.StatusOK)
		case op.Del:
			if st.res.Found[i] {
				st.resp = wire.AppendEmpty(st.resp, wire.StatusOK)
			} else {
				st.resp = wire.AppendEmpty(st.resp, wire.StatusNotFound)
			}
		}
	}
	return nil
}

// gatedSingles answers a gathered singles batch on an unpromoted
// replica. Under the read-only gate, the GET entries are served through
// a side reads-only batch — reads are what replicas are for — and each
// mutation answers StatusReadOnly individually, preserving response
// order; under the stale gate the reads are refused too (StatusStale).
func (st *connState) gatedSingles(g gateState) error {
	if g == gateStale {
		for _, kind := range st.batch.Kinds() {
			if kind == op.Get {
				st.srv.staleRejects.Add(1)
				st.resp = wire.AppendEmpty(st.resp, wire.StatusStale)
			} else {
				st.srv.readOnlyRejects.Add(1)
				st.resp = wire.AppendEmpty(st.resp, wire.StatusReadOnly)
			}
		}
		return nil
	}
	st.gets.Reset()
	keys := st.batch.Keys()
	for i, kind := range st.batch.Kinds() {
		if kind == op.Get {
			st.gets.Get(keys[i])
		}
	}
	var gerr error
	if st.gets.Len() > 0 {
		gerr = st.srv.store.ApplyBatch(&st.gets, &st.gres)
	}
	gi := 0
	for _, kind := range st.batch.Kinds() {
		if kind != op.Get {
			st.srv.readOnlyRejects.Add(1)
			st.resp = wire.AppendEmpty(st.resp, wire.StatusReadOnly)
			continue
		}
		switch {
		case gerr != nil:
			st.srv.errors.Add(1)
			st.resp = wire.AppendError(st.resp, gerr.Error())
		case st.gres.Found[gi]:
			st.resp = wire.AppendValue(st.resp, st.gres.Vals[gi])
		default:
			st.resp = wire.AppendEmpty(st.resp, wire.StatusNotFound)
		}
		gi++
	}
	return nil
}

func (st *connState) appendSingle(tag byte, payload []byte) error {
	want := 8
	if tag == wire.OpPut {
		want = 16
	}
	if len(payload) != want {
		return fmt.Errorf("opcode 0x%02x payload %d bytes, want %d", tag, len(payload), want)
	}
	switch tag {
	case wire.OpGet:
		st.batch.Get(wire.Uint64(payload, 0))
	case wire.OpPut:
		st.batch.Put(wire.Uint64(payload, 0), wire.Uint64(payload, 8))
	case wire.OpDel:
		st.batch.Del(wire.Uint64(payload, 0))
	}
	return nil
}

// peekSingle reports whether the next buffered frame is another
// single-op request (any of GET/PUT/DEL — the mixed coalescer gathers
// across kinds). With a positive BatchWindow it waits up to that long
// for a header to arrive (flushing pending responses first, so a client
// waiting on them is not starved); without one it only inspects what is
// already buffered, adding zero latency. A window timeout consumes
// nothing — the partial bytes stay buffered for the main loop.
// adaptWindow retunes the connection's coalescing window from the
// outcome of the round just gathered. A window is only worth keeping
// when it never expires: open-loop traffic dense enough that every
// round fills to MaxBatch, with armed waits always cut short by
// arriving data. Any round that ended on an expired wait paid the
// timeout — and pays far more than the configured window reads, since
// sub-millisecond read deadlines round up to the poller's granularity —
// so it collapses the window to zero and re-probes only after an
// exponentially growing number of window-less rounds. A wait that data
// cut short mid-round is NOT enough to keep the window (a fast server
// can catch a closed-loop client mid-burst, "earn" the stitch, then
// burn the full timeout on the very next round); only a round that
// both hit and filled to MaxBatch widens. Batch depth alone cannot
// drive any of this: a closed-loop client with a deep pipeline gathers
// deep batches with nothing left in flight behind them.
func (st *connState) adaptWindow(n int) {
	switch {
	case st.waitExpired:
		// An armed window expired empty: collapse, and back off before
		// the next probe.
		st.win = 0
		st.probeGap *= 2
		if st.probeGap < adaptiveProbeMinGap {
			st.probeGap = adaptiveProbeMinGap
		}
		if st.probeGap > adaptiveProbeMaxGap {
			st.probeGap = adaptiveProbeMaxGap
		}
		st.probeSkip = st.probeGap
	case st.waitHit && n >= st.srv.cfg.MaxBatch:
		// Saturated round with every armed wait cut short: the window is
		// stitching a dense open-loop stream and never timing out. Widen
		// toward the ceiling.
		st.probeGap = 0
		ceiling := st.srv.cfg.BatchWindow
		if ceiling <= 0 {
			ceiling = DefaultAdaptiveWindow
		}
		switch {
		case st.win == 0:
			st.win = adaptiveMinWindow
		case st.win < ceiling:
			st.win *= 2
			if st.win > ceiling {
				st.win = ceiling
			}
		}
	case st.win == 0 && n >= 2:
		// Pipelined traffic with no window armed. Occasionally probe a
		// minimal window to discover whether bursts are fragmenting; a
		// lone-request round (n <= 1) never probes — a dribbling client
		// has nothing a window could stitch.
		if st.probeSkip > 0 {
			st.probeSkip--
		} else {
			st.win = adaptiveMinWindow
		}
	}
	st.waitHit, st.waitExpired = false, false
}

func (st *connState) peekSingle() bool {
	if st.br.Buffered() < wire.HeaderSize {
		w := st.srv.cfg.BatchWindow
		if st.srv.cfg.BatchWindowAdaptive {
			w = st.win
		}
		if w <= 0 || st.srv.draining.Load() {
			return false
		}
		st.bw.Flush()
		st.c.SetReadDeadline(time.Now().Add(w))
		_, err := st.br.Peek(wire.HeaderSize)
		st.c.SetReadDeadline(time.Time{})
		if err != nil {
			st.waitExpired = true
			return false
		}
		st.waitHit = true
	}
	hdr, err := st.br.Peek(wire.HeaderSize)
	if err != nil {
		return false
	}
	switch hdr[4] {
	case wire.OpGet, wire.OpPut, wire.OpDel:
		return true
	}
	return false
}

// batchFrame answers a native batch frame (GETBATCH, PUTBATCH, DELBATCH,
// MIXEDBATCH): the payload decodes directly into the connection's
// operation batch — which retains the payload bytes, so a durable
// store's WAL record is those bytes, zero-copy — and one ApplyBatch call
// executes it. The response keeps each frame's historical shape; a
// store-level failure answers StatusErr for the whole frame with the
// stream still aligned.
func (st *connState) batchFrame(tag byte, payload []byte) error {
	var t0 time.Time
	if st.instr {
		st.traced = true
		t0 = time.Now()
	}
	if err := wire.DecodeBatch(tag, payload, &st.batch); err != nil {
		return err
	}
	st.batch.SetTraceID(st.frameCtx)
	if st.instr {
		st.trace.Set(obs.StageDecode, time.Since(t0))
	}
	n := st.batch.Len()
	st.srv.ops.Add(uint64(n))
	if g := st.srv.gate(); g != gateOpen {
		// Batch frames fail as a unit (one response per frame), so the
		// refusal is whole-frame: any mutation makes the frame read-only-
		// refused; a pure-read frame serves under the read-only gate and
		// is stale-refused under the stale gate.
		if st.batch.Mutations() > 0 {
			st.srv.readOnlyRejects.Add(1)
			st.resp = wire.AppendEmpty(st.resp, wire.StatusReadOnly)
			return nil
		}
		if g == gateStale {
			st.srv.staleRejects.Add(1)
			st.resp = wire.AppendEmpty(st.resp, wire.StatusStale)
			return nil
		}
	}
	if st.instr {
		t0 = time.Now()
	}
	err := st.srv.store.ApplyBatch(&st.batch, &st.res)
	if st.instr && st.trace.Get(obs.StageApply) == 0 {
		// See singles: the durable layer fills apply/WAL-append stages
		// when it runs; otherwise the store call is all apply.
		st.trace.Set(obs.StageApply, time.Since(t0))
	}
	if err != nil {
		st.srv.errors.Add(1)
		st.resp = wire.AppendError(st.resp, err.Error())
		return nil
	}
	if st.batch.Mutations() > 0 {
		st.timedWaitShipped()
	}
	switch tag {
	case wire.OpGetBatch:
		st.resp = wire.AppendFoundValues(st.resp, st.res.Found, st.res.Vals)
	case wire.OpPutBatch:
		st.resp = wire.AppendEmpty(st.resp, wire.StatusOK)
	case wire.OpDelBatch:
		st.resp = wire.AppendFound(st.resp, st.res.Found)
	case wire.OpMixedBatch:
		st.resp = wire.AppendMixedResults(st.resp, &st.batch, &st.res)
	}
	return nil
}

// replStream hands a REPLSYNC connection over to the replication
// source. The caller (serveConn) returns right after: the connection is
// a record stream from here until it dies, and serveConn's defer closes
// it like any other connection.
func (st *connState) replStream(payload []byte) {
	s := st.srv
	s.ops.Add(1)
	from, flags, err := wire.DecodeReplSync(payload)
	if err == nil && s.cfg.Repl == nil {
		err = errors.New("replication is not enabled on this server")
	}
	if err != nil {
		s.errors.Add(1)
		st.bw.Write(wire.AppendError(st.resp[:0], err.Error()))
		st.bw.Flush()
		return
	}
	s.logf("server: conn %s: replication stream from LSN %d (flags 0x%02x)", st.c.RemoteAddr(), from, flags)
	if err := s.cfg.Repl.ServeConn(st.c, st.br, st.bw, from, flags); err != nil && !isClosedErr(err) {
		s.logf("server: repl stream %s: %v", st.c.RemoteAddr(), err)
	}
}

// promoteReply answers OpPromote: the replica stops replicating and
// starts accepting writes. Idempotent — promoting a promoted replica
// acknowledges again; a server that was never a replica refuses.
func (st *connState) promoteReply() error {
	st.srv.ops.Add(1)
	rp := st.srv.cfg.Replica
	if rp == nil {
		st.srv.errors.Add(1)
		st.resp = wire.AppendError(st.resp, "this server is not a replica")
		return nil
	}
	lsn := rp.Promote()
	st.srv.logf("server: promoted to primary at LSN %d (requested by %s)", lsn, st.c.RemoteAddr())
	st.resp = wire.AppendEmpty(st.resp, wire.StatusOK)
	return nil
}

// StatsReply builds the full STATS sections: server counters, store
// stats, durability, replication roles, and — with metrics enabled —
// the observability section. The OpStats frame and the admin listener's
// /statsz both serve it.
func (s *Server) StatsReply() wire.StatsReply {
	storeStats := s.store.Stats()
	reply := wire.StatsReply{
		Server:     s.Counters(),
		Store:      storeStats,
		Durability: wire.DurabilityFrom(storeStats),
	}
	if rs, rp := s.cfg.Repl, s.cfg.Replica; rs != nil || rp != nil {
		repl := &wire.ReplicationStats{}
		reply.Role = "primary"
		if rs != nil {
			repl.Primary = rs.Counters()
		}
		if rp != nil {
			repl.Replica = rp.Counters()
			if !rp.WritesAllowed() {
				reply.Role = "replica"
			}
		}
		reply.Replication = repl
	}
	if s.metrics != nil {
		reply.Obs = s.metrics.obsStats()
	}
	if top, ok := vmshortcut.HotKeys(s.store, hotkeysTopK); ok {
		hk := &wire.HotkeysStats{
			CacheReads:  storeStats.FastpathCacheReads,
			CacheMisses: storeStats.CacheMisses,
		}
		if probes := hk.CacheReads + hk.CacheMisses; probes > 0 {
			hk.HitRate = float64(hk.CacheReads) / float64(probes)
		}
		for _, h := range top {
			hk.Top = append(hk.Top, wire.HotKey{Key: h.Key, Hits: h.Hits})
		}
		reply.Hotkeys = hk
	}
	return reply
}

// hotkeysTopK bounds the hotkeys section's Top list.
const hotkeysTopK = 8

// statsReply answers OpStats with the JSON StatsReply.
func (st *connState) statsReply() error {
	st.srv.ops.Add(1)
	body, err := json.Marshal(st.srv.StatsReply())
	if err != nil {
		return fmt.Errorf("marshaling stats: %w", err)
	}
	st.resp = wire.AppendFrame(st.resp, wire.StatusOK, body)
	return nil
}

func isClosedErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

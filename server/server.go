// Package server turns a vmshortcut.Store into a network KV service: a
// TCP server speaking the compact length-prefixed binary protocol of
// internal/wire (GET/PUT/DEL/STATS plus native batch frames) with full
// pipelining.
//
// The serving layer is built around the same observation as the store's
// batch API: per-operation overhead — here a syscall, a frame decode, and
// a routing decision per request — dominates small key-value ops, and
// batching amortizes it. Each connection runs a coalescer: when pipelined
// single-op requests of the same kind are already buffered (or arrive
// within Config.BatchWindow), they are gathered and executed as one
// InsertBatch/LookupBatch/DeleteBatch call, so the once-per-batch routing
// decision of Shortcut-EH and the sharded store's parallel fan-out are
// exploited on the wire path. Responses are written in request order, so
// clients cannot observe the coalescing.
//
// Shutdown drains: accepting stops, connections finish every request that
// has already arrived, and pending responses are flushed before the
// connections close.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vmshortcut"
	"vmshortcut/internal/wire"
)

// DefaultMaxBatch caps how many pipelined single-op requests one
// coalesced store call may carry.
const DefaultMaxBatch = 1024

// Config configures a Server. Store is the only required field.
type Config struct {
	// Store answers every request. The server does not close it: the
	// caller owns the store's lifecycle (cmd/ehserver closes it after
	// Shutdown has drained). It must be safe for concurrent use
	// (WithConcurrency or WithShards) when more than one connection is
	// expected.
	//
	// Durability rides on the store, not the server: with a store opened
	// via WithWAL, every InsertBatch/DeleteBatch returns only after the
	// mutation is logged (and, under FsyncAlways, fsynced), and the
	// server writes a response only after the store call returns — so a
	// client that has read its ack holds a durable write, and the
	// coalescer's batching makes that one group-committed fsync per
	// gathered batch rather than per op.
	Store vmshortcut.Store

	// BatchWindow is how long a connection's coalescer waits for further
	// pipelined requests of the same kind before executing a gathered
	// batch. 0 (the default) never waits: only requests already buffered
	// on the connection coalesce, which adds no latency. A positive
	// window trades up to that much added latency for larger batches —
	// worthwhile for clients that dribble requests.
	BatchWindow time.Duration

	// MaxBatch caps the ops per coalesced store call (default
	// DefaultMaxBatch, hard-capped at wire.MaxBatch).
	MaxBatch int

	// Logf receives accept/connection errors; nil discards them.
	Logf func(format string, args ...any)
}

// Server serves the wire protocol from a Store. Create with New, start
// with Serve or ListenAndServe, stop with Shutdown (graceful) or Close.
type Server struct {
	cfg   Config
	store vmshortcut.Store

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	draining atomic.Bool
	closed   atomic.Bool

	activeConns      atomic.Int64
	totalConns       atomic.Uint64
	ops              atomic.Uint64
	frames           atomic.Uint64
	coalescedBatches atomic.Uint64
	coalescedOps     atomic.Uint64
	errors           atomic.Uint64
}

// New creates a Server for cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBatch > wire.MaxBatch {
		cfg.MaxBatch = wire.MaxBatch
	}
	return &Server{cfg: cfg, store: cfg.Store, conns: map[net.Conn]struct{}{}}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown, Close, or a fatal
// accept error. It blocks; the returned error is nil after a clean stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		// Register and wg.Add under the same lock Shutdown snapshots
		// under, so its wg.Wait can never miss a just-accepted conn.
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.totalConns.Add(1)
		s.activeConns.Add(1)
		go s.serveConn(c)
	}
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting and drains gracefully: every connection
// finishes the requests that have already arrived (including everything
// pipelined in its read buffer), flushes its responses, and closes. A
// request half-received when the deadline fires is dropped with its
// connection. If ctx expires first, remaining connections are closed
// forcibly and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	// Unblock handlers parked in a read: the poked deadline makes the
	// read fail with a timeout, which the handler treats as "drain what
	// is buffered, then exit".
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

// Close stops the server immediately: the listener and every connection
// close without draining. Prefer Shutdown.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.closed.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	s.closeConns()
	s.wg.Wait()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

// Counters snapshots the serving-layer counters.
func (s *Server) Counters() wire.ServerCounters {
	return wire.ServerCounters{
		ActiveConns:      uint64(s.activeConns.Load()),
		TotalConns:       s.totalConns.Load(),
		Ops:              s.ops.Load(),
		Frames:           s.frames.Load(),
		CoalescedBatches: s.coalescedBatches.Load(),
		CoalescedOps:     s.coalescedOps.Load(),
		Errors:           s.errors.Load(),
	}
}

// connState is the per-connection working set: buffered reader/writer,
// the reusable frame payload buffer, and the coalescer's gather slices —
// all reused across requests so the steady-state request path does not
// allocate.
type connState struct {
	srv     *Server
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	readBuf []byte
	keys    []uint64
	vals    []uint64
	outs    []uint64
	resp    []byte
	// drainBroken is set when Shutdown's deadline poke interrupted the
	// coalescer mid-frame: the gathered complete requests are still
	// answered, but the stream is no longer frame-aligned, so the
	// connection must close right after.
	drainBroken bool
}

// serveConn runs one connection's request loop until EOF, a protocol
// error, or drain.
func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.activeConns.Add(-1)
		s.wg.Done()
	}()
	st := &connState{
		srv: s,
		c:   c,
		br:  bufio.NewReaderSize(c, 64<<10),
		bw:  bufio.NewWriterSize(c, 64<<10),
	}
	for {
		// Drain check before blocking: Shutdown's deadline poke could be
		// swallowed by the coalescer clearing its batch-window deadline,
		// so the flag is re-read here, where the connection is about to
		// park with nothing buffered.
		if s.draining.Load() && st.br.Buffered() == 0 {
			st.bw.Flush()
			return
		}
		tag, payload, buf, err := wire.ReadFrame(st.br, st.readBuf)
		st.readBuf = buf
		if err != nil {
			// A drain poke surfaces as a timeout; everything the client
			// had pipelined is already processed (the loop drains the
			// buffer before blocking), so flush and exit.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && s.draining.Load() {
				st.bw.Flush()
				return
			}
			if !isClosedErr(err) {
				s.logf("server: conn %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		s.frames.Add(1)
		st.resp = st.resp[:0]
		switch tag {
		case wire.OpGet, wire.OpPut, wire.OpDel:
			err = st.singles(tag, payload)
		case wire.OpGetBatch:
			err = st.getBatch(payload)
		case wire.OpPutBatch:
			err = st.putBatch(payload)
		case wire.OpDelBatch:
			err = st.delBatch(payload)
		case wire.OpStats:
			err = st.statsReply()
		default:
			err = fmt.Errorf("unknown opcode 0x%02x", tag)
		}
		if err != nil {
			// Malformed frame: the stream can no longer be trusted to be
			// frame-aligned. Answer with an error frame and close.
			s.errors.Add(1)
			st.bw.Write(wire.AppendError(st.resp[:0], err.Error()))
			st.bw.Flush()
			s.logf("server: conn %s: %v", c.RemoteAddr(), err)
			return
		}
		if _, werr := st.bw.Write(st.resp); werr != nil {
			return
		}
		if st.drainBroken {
			st.bw.Flush()
			return
		}
		// Flush when the pipeline is (momentarily) empty — batching the
		// flush across pipelined requests is the write-side half of the
		// amortization.
		if st.br.Buffered() == 0 {
			if werr := st.bw.Flush(); werr != nil {
				return
			}
			if s.draining.Load() {
				return
			}
		}
	}
}

// singles handles a single-op request frame and coalesces: consecutive
// pipelined frames of the same opcode — those already buffered, plus any
// that arrive within BatchWindow — are gathered (up to MaxBatch) and
// executed as one store batch call. Responses are appended in request
// order, so the wire contract is indistinguishable from serial execution.
func (st *connState) singles(op byte, payload []byte) error {
	st.keys = st.keys[:0]
	st.vals = st.vals[:0]
	if err := st.appendSingle(op, payload); err != nil {
		return err
	}
	for len(st.keys) < st.srv.cfg.MaxBatch && st.peekSame(op) {
		tag, p, buf, err := wire.ReadFrame(st.br, st.readBuf)
		st.readBuf = buf
		if err != nil {
			// Shutdown's deadline poke can land while a frame's body is
			// still in flight: the header was consumed, so the stream is
			// broken — but the requests gathered so far are complete and
			// must still be answered before the connection closes.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && st.srv.draining.Load() {
				st.drainBroken = true
				break
			}
			return fmt.Errorf("reading pipelined frame: %w", err)
		}
		if tag != op { // unreachable: peekSame checked the header
			return fmt.Errorf("pipelined opcode changed mid-run: 0x%02x", tag)
		}
		st.srv.frames.Add(1)
		if err := st.appendSingle(op, p); err != nil {
			return err
		}
	}

	n := len(st.keys)
	store := st.srv.store
	st.srv.ops.Add(uint64(n))
	if n > 1 {
		st.srv.coalescedBatches.Add(1)
		st.srv.coalescedOps.Add(uint64(n))
	}
	switch op {
	case wire.OpGet:
		if n == 1 {
			v, ok := store.Lookup(st.keys[0])
			st.appendLookupResp(v, ok)
			return nil
		}
		if cap(st.outs) < n {
			st.outs = make([]uint64, n)
		}
		st.outs = st.outs[:n]
		oks := store.LookupBatch(st.keys, st.outs)
		for i, ok := range oks {
			st.appendLookupResp(st.outs[i], ok)
		}
	case wire.OpPut:
		var err error
		if n == 1 {
			err = store.Insert(st.keys[0], st.vals[0])
		} else {
			err = store.InsertBatch(st.keys, st.vals)
		}
		for i := 0; i < n; i++ {
			if err != nil {
				st.srv.errors.Add(1)
				st.resp = wire.AppendError(st.resp, err.Error())
			} else {
				st.resp = wire.AppendEmpty(st.resp, wire.StatusOK)
			}
		}
	case wire.OpDel:
		if n == 1 {
			st.appendDelResp(store.Delete(st.keys[0]))
			return nil
		}
		for _, ok := range store.DeleteBatch(st.keys) {
			st.appendDelResp(ok)
		}
	}
	return nil
}

func (st *connState) appendSingle(op byte, payload []byte) error {
	want := 8
	if op == wire.OpPut {
		want = 16
	}
	if len(payload) != want {
		return fmt.Errorf("opcode 0x%02x payload %d bytes, want %d", op, len(payload), want)
	}
	st.keys = append(st.keys, wire.Uint64(payload, 0))
	if op == wire.OpPut {
		st.vals = append(st.vals, wire.Uint64(payload, 8))
	}
	return nil
}

func (st *connState) appendLookupResp(v uint64, ok bool) {
	if ok {
		st.resp = wire.AppendValue(st.resp, v)
	} else {
		st.resp = wire.AppendEmpty(st.resp, wire.StatusNotFound)
	}
}

func (st *connState) appendDelResp(ok bool) {
	if ok {
		st.resp = wire.AppendEmpty(st.resp, wire.StatusOK)
	} else {
		st.resp = wire.AppendEmpty(st.resp, wire.StatusNotFound)
	}
}

// peekSame reports whether the next buffered frame carries the same
// opcode. With a positive BatchWindow it waits up to that long for a
// header to arrive (flushing pending responses first, so a client waiting
// on them is not starved); without one it only inspects what is already
// buffered, adding zero latency. A window timeout consumes nothing — the
// partial bytes stay buffered for the main loop.
func (st *connState) peekSame(op byte) bool {
	if st.br.Buffered() < wire.HeaderSize {
		w := st.srv.cfg.BatchWindow
		if w <= 0 || st.srv.draining.Load() {
			return false
		}
		st.bw.Flush()
		st.c.SetReadDeadline(time.Now().Add(w))
		_, err := st.br.Peek(wire.HeaderSize)
		st.c.SetReadDeadline(time.Time{})
		if err != nil {
			return false
		}
	}
	hdr, err := st.br.Peek(wire.HeaderSize)
	if err != nil {
		return false
	}
	return hdr[4] == op
}

// getBatch answers an OpGetBatch frame with one LookupBatch call.
func (st *connState) getBatch(payload []byte) error {
	n, err := wire.BatchLen(payload, 8)
	if err != nil {
		return err
	}
	st.keys = st.keys[:0]
	for i := 0; i < n; i++ {
		st.keys = append(st.keys, wire.Uint64(payload, 4+8*i))
	}
	if cap(st.outs) < n {
		st.outs = make([]uint64, n)
	}
	st.outs = st.outs[:n]
	oks := st.srv.store.LookupBatch(st.keys, st.outs)
	st.srv.ops.Add(uint64(n))
	st.resp = wire.AppendFoundValues(st.resp, oks, st.outs)
	return nil
}

// putBatch answers an OpPutBatch frame with one InsertBatch call.
func (st *connState) putBatch(payload []byte) error {
	n, err := wire.BatchLen(payload, 16)
	if err != nil {
		return err
	}
	st.keys = st.keys[:0]
	st.vals = st.vals[:0]
	for i := 0; i < n; i++ {
		st.keys = append(st.keys, wire.Uint64(payload, 4+16*i))
		st.vals = append(st.vals, wire.Uint64(payload, 4+16*i+8))
	}
	st.srv.ops.Add(uint64(n))
	if err := st.srv.store.InsertBatch(st.keys, st.vals); err != nil {
		st.srv.errors.Add(1)
		st.resp = wire.AppendError(st.resp, err.Error())
		return nil
	}
	st.resp = wire.AppendEmpty(st.resp, wire.StatusOK)
	return nil
}

// delBatch answers an OpDelBatch frame with one DeleteBatch call.
func (st *connState) delBatch(payload []byte) error {
	n, err := wire.BatchLen(payload, 8)
	if err != nil {
		return err
	}
	st.keys = st.keys[:0]
	for i := 0; i < n; i++ {
		st.keys = append(st.keys, wire.Uint64(payload, 4+8*i))
	}
	oks := st.srv.store.DeleteBatch(st.keys)
	st.srv.ops.Add(uint64(n))
	st.resp = wire.AppendFound(st.resp, oks)
	return nil
}

// statsReply answers OpStats with the JSON StatsReply.
func (st *connState) statsReply() error {
	st.srv.ops.Add(1)
	reply := wire.StatsReply{
		Server: st.srv.Counters(),
		Store:  st.srv.store.Stats(),
	}
	body, err := json.Marshal(reply)
	if err != nil {
		return fmt.Errorf("marshaling stats: %w", err)
	}
	st.resp = wire.AppendFrame(st.resp, wire.StatusOK, body)
	return nil
}

func isClosedErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"vmshortcut/internal/obs"
)

// tracezTrace is one flight-recorder record rendered for /tracez.
type tracezTrace struct {
	// TraceID is the wire trace ID in hex ("" for unsampled slow-op
	// captures, which have no client-visible ID).
	TraceID string `json:"trace_id,omitempty"`
	// Origin is "primary" or "follower" — which node recorded the spans.
	Origin string `json:"origin"`
	// Start is the batch's wall-clock start (RFC3339Nano).
	Start string `json:"start"`
	// TotalMS is the end-to-end span in milliseconds.
	TotalMS float64 `json:"total_ms"`
	Slow    bool    `json:"slow,omitempty"`
	Ops     int     `json:"ops"`
	LSN     uint64  `json:"lsn,omitempty"`
	// Spans is the per-stage breakdown, nanoseconds, keyed by stage name
	// (frame_decode, coalesce_wait, ... follower_apply).
	Spans map[string]uint64 `json:"spans"`
}

// tracezReply is /tracez's JSON shape.
type tracezReply struct {
	// Capacity is the flight-recorder ring size; Recorded is how many
	// records are live in it; Returned is how many survived the query's
	// filter and limit.
	Capacity int           `json:"capacity"`
	Recorded int           `json:"recorded"`
	Returned int           `json:"returned"`
	Traces   []tracezTrace `json:"traces"`
}

// tracezHandler serves the flight recorder. Query parameters:
//
//	n        max traces returned (default 50)
//	sort     "recent" (default) or "slow" (by end-to-end span, descending)
//	stage    filter: only traces where this stage recorded (by stage name)
//	min_ms   filter: only traces whose filtered stage (or total span,
//	         without stage) meets this many milliseconds
func (s *Server) tracezHandler(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		http.Error(w, "metrics are not enabled on this server", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	n := 50
	if v := q.Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = p
	}
	bySlow := false
	switch q.Get("sort") {
	case "", "recent":
	case "slow":
		bySlow = true
	default:
		http.Error(w, `sort must be "recent" or "slow"`, http.StatusBadRequest)
		return
	}
	stage, hasStage := obs.Stage(-1), false
	if v := q.Get("stage"); v != "" {
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if st.String() == v {
				stage, hasStage = st, true
				break
			}
		}
		if !hasStage {
			http.Error(w, fmt.Sprintf("unknown stage %q", v), http.StatusBadRequest)
			return
		}
	}
	var minNS uint64
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			http.Error(w, "min_ms must be a non-negative number", http.StatusBadRequest)
			return
		}
		minNS = uint64(f * float64(time.Millisecond))
	}

	recs := s.metrics.recorder.Snapshot()
	reply := tracezReply{Capacity: s.metrics.recorder.Cap(), Recorded: len(recs)}
	kept := recs[:0]
	for i := range recs {
		rec := &recs[i]
		if hasStage && !rec.Set[stage] {
			continue
		}
		threshold := rec.TotalNS()
		if hasStage {
			threshold = rec.NS[stage]
		}
		if threshold < minNS {
			continue
		}
		kept = append(kept, *rec)
	}
	if bySlow {
		sort.SliceStable(kept, func(i, j int) bool { return kept[i].TotalNS() > kept[j].TotalNS() })
	}
	if len(kept) > n {
		kept = kept[:n]
	}
	reply.Returned = len(kept)
	reply.Traces = make([]tracezTrace, len(kept))
	for i := range kept {
		rec := &kept[i]
		t := tracezTrace{
			Origin:  rec.Origin.String(),
			Start:   time.Unix(0, rec.StartNS).Format(time.RFC3339Nano),
			TotalMS: float64(rec.TotalNS()) / float64(time.Millisecond),
			Slow:    rec.Slow,
			Ops:     rec.Ops,
			LSN:     rec.LSN,
			Spans:   make(map[string]uint64),
		}
		if rec.ID != 0 {
			t.TraceID = fmt.Sprintf("%016x", rec.ID)
		}
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if rec.Set[st] {
				t.Spans[st.String()] = rec.NS[st]
			}
		}
		reply.Traces[i] = t
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(reply)
}

package server_test

import (
	"context"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"vmshortcut"
	"vmshortcut/client"
	"vmshortcut/internal/wire"
	"vmshortcut/server"
)

// coalesceWindow is the batch window of the tests that assert exact
// coalescing: a pipelined burst that TCP happens to split across reads
// still gathers into one run. Tests without batch assertions run with
// window 0 so lone requests are not delayed.
const coalesceWindow = 100 * time.Millisecond

// startServer opens a store and serves it on a loopback port, cleaning
// both up with the test.
func startServer(t *testing.T, cfg server.Config, storeOpts ...vmshortcut.Option) (*server.Server, vmshortcut.Store, string) {
	t.Helper()
	opts := append([]vmshortcut.Option{
		vmshortcut.WithPollInterval(time.Millisecond),
		vmshortcut.WithConcurrency(true),
	}, storeOpts...)
	st, err := vmshortcut.Open(vmshortcut.KindShortcutEH, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })

	cfg.Store = st
	cfg.Logf = t.Logf
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, st, ln.Addr().String()
}

func TestSingleOpsRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, server.Config{})
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, found, err := c.Get(1); err != nil || found {
		t.Fatalf("Get(absent) = %v, %v", found, err)
	}
	if err := c.Put(1, 42); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, found, err := c.Get(1); err != nil || !found || v != 42 {
		t.Fatalf("Get(1) = %d, %v, %v", v, found, err)
	}
	if found, err := c.Del(1); err != nil || !found {
		t.Fatalf("Del(1) = %v, %v", found, err)
	}
	if found, err := c.Del(1); err != nil || found {
		t.Fatalf("second Del(1) = %v, %v", found, err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Store.Kind != vmshortcut.KindShortcutEH || st.Server.Ops == 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestPipelinedRunsCoalesce is the acceptance check for the coalescer:
// pipelined single-op frames of one kind must reach the store as
// InsertBatch/LookupBatch/DeleteBatch calls, visible in the store's
// batch-op counters, with every response still correct and in order.
func TestPipelinedRunsCoalesce(t *testing.T) {
	srv, st, addr := startServer(t, server.Config{BatchWindow: coalesceWindow})
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	p := c.Pipeline()
	for i := uint64(0); i < n; i++ {
		p.Put(i, i*3)
	}
	res, err := p.Flush(nil)
	if err != nil {
		t.Fatalf("put pipeline: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || !r.Found {
			t.Fatalf("put result[%d] = %+v", i, r)
		}
	}

	for i := uint64(0); i < n; i++ {
		p.Get(i)
	}
	if res, err = p.Flush(res[:0]); err != nil {
		t.Fatalf("get pipeline: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || !r.Found || r.Value != uint64(i)*3 {
			t.Fatalf("get result[%d] = %+v, want value %d", i, r, i*3)
		}
	}

	for i := uint64(0); i < n; i++ {
		p.Del(i)
	}
	if res, err = p.Flush(res[:0]); err != nil {
		t.Fatalf("del pipeline: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || !r.Found {
			t.Fatalf("del result[%d] = %+v", i, r)
		}
	}

	stats := st.Stats()
	if stats.InsertBatches == 0 || stats.LookupBatches == 0 || stats.DeleteBatches == 0 {
		t.Fatalf("pipelined runs did not reach the store as batches: %+v", stats)
	}
	counters := srv.Counters()
	if counters.CoalescedBatches < 3 || counters.CoalescedOps < 3*n-6 {
		t.Fatalf("coalescer counters = %+v", counters)
	}
}

// TestPipelineOrderAcrossKinds interleaves op kinds so the coalescer must
// break runs at every kind switch and answer strictly in request order.
func TestPipelineOrderAcrossKinds(t *testing.T) {
	_, _, addr := startServer(t, server.Config{})
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	p.Put(7, 70) // 0: ack
	p.Get(7)     // 1: 70
	p.Put(7, 71) // 2: ack — same key overwritten after the read
	p.Get(7)     // 3: 71
	p.Del(7)     // 4: found
	p.Get(7)     // 5: miss
	p.Put(8, 80) // 6: ack
	p.Get(8)     // 7: 80
	res, err := p.Flush(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		found bool
		value uint64
	}{
		{true, 0}, {true, 70}, {true, 0}, {true, 71},
		{true, 0}, {false, 0}, {true, 0}, {true, 80},
	}
	for i, w := range want {
		if res[i].Err != nil || res[i].Found != w.found || res[i].Value != w.value {
			t.Fatalf("result[%d] = %+v, want %+v", i, res[i], w)
		}
	}
}

// TestBatchFrames drives the native batch opcodes end to end: one frame,
// one store batch call, element-wise results.
func TestBatchFrames(t *testing.T) {
	_, st, addr := startServer(t, server.Config{})
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := []uint64{10, 20, 30, 40}
	vals := []uint64{1, 2, 3, 4}
	if err := c.PutBatch(keys, vals); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}

	probe := []uint64{10, 11, 20, 21, 30, 40}
	out := make([]uint64, len(probe))
	oks, err := c.GetBatch(probe, out)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	wantOK := []bool{true, false, true, false, true, true}
	wantV := []uint64{1, 0, 2, 0, 3, 4}
	for i := range probe {
		if oks[i] != wantOK[i] || out[i] != wantV[i] {
			t.Fatalf("GetBatch[%d] = (%d, %v), want (%d, %v)", i, out[i], oks[i], wantV[i], wantOK[i])
		}
	}

	dels, err := c.DelBatch([]uint64{10, 11, 20})
	if err != nil {
		t.Fatalf("DelBatch: %v", err)
	}
	if !dels[0] || dels[1] || !dels[2] {
		t.Fatalf("DelBatch = %v", dels)
	}

	stats := st.Stats()
	if stats.InsertBatches != 1 || stats.LookupBatches != 1 || stats.DeleteBatches != 1 {
		t.Fatalf("batch counters = {I:%d L:%d D:%d}, want {1 1 1}",
			stats.InsertBatches, stats.LookupBatches, stats.DeleteBatches)
	}
	if stats.Entries != 2 {
		t.Fatalf("Entries = %d, want 2", stats.Entries)
	}
}

// TestShardedStoreBehindServer runs the wire path against a sharded
// store: the coalesced batches must fan out per shard and come back in
// request order.
func TestShardedStoreBehindServer(t *testing.T) {
	_, st, addr := startServer(t, server.Config{BatchWindow: coalesceWindow}, vmshortcut.WithShards(4))
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 500
	p := c.Pipeline()
	for i := uint64(0); i < n; i++ {
		p.Put(i*2654435761, i)
	}
	res, err := p.Flush(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		p.Get(i * 2654435761)
	}
	if res, err = p.Flush(res[:0]); err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || !r.Found || r.Value != uint64(i) {
			t.Fatalf("sharded get[%d] = %+v", i, r)
		}
	}
	if stats := st.Stats(); stats.InsertBatches == 0 || stats.LookupBatches == 0 {
		t.Fatalf("sharded store saw no batches: %+v", stats)
	}
}

// TestMixedBatchFrame drives the MIXEDBATCH opcode end to end: one
// frame carrying an ordered GET/PUT/DEL mix, one ApplyBatch on the
// store, element-wise results in entry order — including same-key
// read-after-write ordering inside the frame.
func TestMixedBatchFrame(t *testing.T) {
	_, st, addr := startServer(t, server.Config{})
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var m client.MixedBatch
	m.Put(1, 11) // 0: ack
	m.Get(1)     // 1: 11
	m.Put(1, 12) // 2: ack — same key, later entry
	m.Get(1)     // 3: 12
	m.Del(1)     // 4: found
	m.Get(1)     // 5: miss
	m.Get(2)     // 6: miss
	m.Put(2, 22) // 7: ack
	p := c.Pipeline()
	p.Mixed(&m)
	if got := p.Len(); got != 8 {
		t.Fatalf("pipeline queued %d ops for the mixed batch", got)
	}
	res, err := p.Flush(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		found bool
		value uint64
	}{
		{true, 0}, {true, 11}, {true, 0}, {true, 12},
		{true, 0}, {false, 0}, {false, 0}, {true, 0},
	}
	for i, w := range want {
		if res[i].Err != nil || res[i].Found != w.found || res[i].Value != w.value {
			t.Fatalf("result[%d] = %+v, want %+v", i, res[i], w)
		}
	}
	if v, ok := st.Lookup(2); !ok || v != 22 {
		t.Fatalf("store after mixed batch: Lookup(2) = %d, %v", v, ok)
	}
}

// TestMixedCoalescingAcrossKinds is the acceptance check for the mixed
// coalescer: a pipelined burst that SWITCHES kinds must still gather
// into few ApplyBatch calls (visible as one coalesced batch per flush,
// not one per kind switch), with every response correct and in order.
func TestMixedCoalescingAcrossKinds(t *testing.T) {
	srv, _, addr := startServer(t, server.Config{BatchWindow: coalesceWindow})
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rounds = 32
	p := c.Pipeline()
	for i := uint64(0); i < rounds; i++ {
		p.Put(i, i*7) // alternate kinds every op: the old same-kind
		p.Get(i)      // coalescer would break the run 2×rounds times
	}
	res, err := p.Flush(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < rounds; i++ {
		put, get := res[2*i], res[2*i+1]
		if put.Err != nil || !put.Found {
			t.Fatalf("put result[%d] = %+v", i, put)
		}
		if get.Err != nil || !get.Found || get.Value != i*7 {
			t.Fatalf("get result[%d] = %+v, want %d", i, get, i*7)
		}
	}
	counters := srv.Counters()
	if counters.CoalescedBatches == 0 {
		t.Fatal("no coalesced batches despite a pipelined burst")
	}
	// The burst is 64 ops; a same-kind coalescer would need ≥ 64 store
	// calls (every op is a kind switch). The mixed coalescer must carry
	// many ops per batch.
	if avg := float64(counters.CoalescedOps) / float64(counters.CoalescedBatches); avg < 8 {
		t.Fatalf("coalesced batches average %.1f ops — kind switches still break the batch", avg)
	}
}

// TestShutdownDrainsHalfFilledWindow is the drain contract for the mixed
// coalescer's batch window: a connection whose coalescer sits mid-window
// with a half-filled MIXED batch (a PUT, a GET, and a DEL gathered, more
// expected) must, on Shutdown, execute the gathered batch, flush the
// responses in order, and close — not drop the batch, not wait out the
// window. Run under -race in CI this also checks the drain poke against
// the window wait.
func TestShutdownDrainsHalfFilledWindow(t *testing.T) {
	srv, _, addr := startServer(t, server.Config{BatchWindow: 30 * time.Second})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// Three single-op frames of different kinds, then silence: the
	// coalescer gathers all three and parks in the 30s batch window.
	var burst []byte
	burst = wire.AppendPut(burst, 1, 10)
	burst = wire.AppendKey(burst, wire.OpGet, 1)
	burst = wire.AppendKey(burst, wire.OpDel, 1)
	if _, err := raw.Write(burst); err != nil {
		t.Fatal(err)
	}
	// Give the server time to ingest the burst and enter the window wait
	// (the responses cannot arrive before Shutdown — the window flush
	// only happens when the coalescer peeks, which it has: nothing more
	// will arrive).
	time.Sleep(100 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	reply, err := io.ReadAll(raw)
	if err != nil {
		t.Fatalf("reading drained responses: %v", err)
	}
	// PUT ack, GET hit (5-byte header + 8-byte value), DEL found.
	if want := 3*wire.HeaderSize + 8; len(reply) != want {
		t.Fatalf("drained %d response bytes, want %d", len(reply), want)
	}
	if reply[4] != wire.StatusOK {
		t.Fatalf("PUT response = %x", reply[:wire.HeaderSize])
	}
	get := reply[wire.HeaderSize:]
	if get[4] != wire.StatusOK || wire.Uint64(get, wire.HeaderSize) != 10 {
		t.Fatalf("GET response = %x", get[:wire.HeaderSize+8])
	}
	del := get[wire.HeaderSize+8:]
	if del[4] != wire.StatusOK {
		t.Fatalf("DEL response = %x", del)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestConcurrentClients hammers one server from several pooled clients;
// run under -race this is the serving-path race check.
func TestConcurrentClients(t *testing.T) {
	_, _, addr := startServer(t, server.Config{}, vmshortcut.WithShards(2))
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := uint64(0); i < perWorker; i++ {
				if err := cl.Put(base+i, i); err != nil {
					errs <- err
					return
				}
			}
			for i := uint64(0); i < perWorker; i++ {
				v, found, err := cl.Get(base + i)
				if err != nil || !found || v != i {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker: %v", err)
	}
}

// TestMalformedFrameClosesConn sends a frame with an insane length
// prefix; the server must answer with an error frame (or just close) and
// drop the connection rather than misinterpret the stream.
func TestMalformedFrameClosesConn(t *testing.T) {
	_, _, addr := startServer(t, server.Config{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], 1<<30) // over MaxFrame
	hdr[4] = 0x01
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Whatever arrives, the stream must end: read to EOF.
	if _, err := io.ReadAll(raw); err != nil {
		t.Fatalf("conn not closed after malformed frame: %v", err)
	}
}

// TestUnknownOpcodeRejected sends a well-formed frame with a bogus
// opcode; the connection must be answered with StatusErr and closed.
func TestUnknownOpcodeRejected(t *testing.T) {
	_, _, addr := startServer(t, server.Config{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	var frame [5]byte
	binary.LittleEndian.PutUint32(frame[:4], 1)
	frame[4] = 0x7F
	if _, err := raw.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := io.ReadAll(raw)
	if err != nil {
		t.Fatalf("reading error reply: %v", err)
	}
	if len(reply) < 5 || reply[4] != 0x02 { // StatusErr
		t.Fatalf("reply = %x, want a StatusErr frame", reply)
	}
}

// TestGracefulShutdown writes a pipelined burst, waits until the server
// has ingested every request, then shuts down — every received request
// must still be answered and the responses flushed before the connection
// closes. The WaitSync/Close draining contract of cmd/ehserver depends
// on this.
func TestGracefulShutdown(t *testing.T) {
	srv, st, addr := startServer(t, server.Config{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	const n = 2000
	var burst []byte
	for i := uint64(0); i < n; i++ {
		burst = wire.AppendPut(burst, i, i+1)
	}
	if _, err := raw.Write(burst); err != nil {
		t.Fatal(err)
	}
	// Wait until every PUT has been applied, so nothing is in TCP flight
	// when the drain starts.
	deadline := time.Now().Add(10 * time.Second)
	for st.Len() != n {
		if time.Now().After(deadline) {
			t.Fatalf("server ingested %d/%d requests", st.Len(), n)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// All n acks must arrive, then a clean EOF.
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	reply, err := io.ReadAll(raw)
	if err != nil {
		t.Fatalf("reading drained responses: %v", err)
	}
	if want := n * wire.HeaderSize; len(reply) != want {
		t.Fatalf("drained %d response bytes, want %d (%d acks)", len(reply), want, n)
	}
	for i := 0; i < n; i++ {
		if reply[i*wire.HeaderSize+4] != wire.StatusOK {
			t.Fatalf("response %d not StatusOK: %x", i, reply[i*wire.HeaderSize:(i+1)*wire.HeaderSize])
		}
	}
	// The store is still the caller's to close — the server must not have
	// touched it.
	if !st.WaitSync(5 * time.Second) {
		t.Fatal("WaitSync after shutdown")
	}
}

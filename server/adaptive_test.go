package server

import (
	"testing"
	"time"
)

// TestAdaptWindow exercises the per-connection window state machine on
// its wait-outcome signal: a window widens only when the round filled
// to MaxBatch with every armed wait cut short by arriving data, any
// round that ended on an expired wait collapses to zero with an
// exponential probe backoff, and pipelined rounds probe a minimal
// window once the backoff drains.
func TestAdaptWindow(t *testing.T) {
	cfg := Config{BatchWindowAdaptive: true, MaxBatch: 64}
	st := &connState{srv: &Server{cfg: cfg}}

	// First pipelined round with no window armed: probe immediately.
	st.adaptWindow(32)
	if st.win != adaptiveMinWindow {
		t.Fatalf("first pipelined round: win = %v, want probe %v", st.win, adaptiveMinWindow)
	}

	// Saturated rounds whose waits were all cut short double the window
	// up to the default ceiling.
	for i := 0; i < 20; i++ {
		st.waitHit = true
		st.adaptWindow(cfg.MaxBatch)
	}
	if st.win != DefaultAdaptiveWindow {
		t.Fatalf("saturated win = %v, want ceiling %v", st.win, DefaultAdaptiveWindow)
	}
	if st.waitHit || st.waitExpired {
		t.Fatal("outcome flags not reset after a round")
	}

	// A wait cut short on a round that did NOT fill to MaxBatch is the
	// fast-server-catches-client-mid-burst case: it must not widen (the
	// next round's terminal wait would burn the full timeout), but it
	// holds the current window.
	before := st.win
	st.waitHit = true
	st.adaptWindow(32)
	if st.win != before {
		t.Fatalf("unsaturated hit changed win %v -> %v", before, st.win)
	}

	// A round whose armed window expired empty collapses to zero and arms
	// the backoff — even if an earlier wait in the same round was hit.
	st.waitHit, st.waitExpired = true, true
	st.adaptWindow(32)
	if st.win != 0 {
		t.Fatalf("empty wait: win = %v, want 0", st.win)
	}
	if st.probeSkip != adaptiveProbeMinGap {
		t.Fatalf("backoff gap = %d, want %d", st.probeSkip, adaptiveProbeMinGap)
	}

	// The next probe happens only after the backoff drains, and each
	// wasted probe doubles the gap up to the cap.
	gap := adaptiveProbeMinGap
	for rounds := 0; gap <= adaptiveProbeMaxGap; rounds++ {
		for i := 0; i < gap; i++ {
			st.adaptWindow(32)
			if st.win != 0 {
				t.Fatalf("probed %d rounds early (gap %d)", gap-i, gap)
			}
		}
		st.adaptWindow(32)
		if st.win != adaptiveMinWindow {
			t.Fatalf("backoff drained but no probe armed (gap %d)", gap)
		}
		st.waitExpired = true
		st.adaptWindow(32) // the probe wastes again
		if st.win != 0 {
			t.Fatalf("wasted probe kept win = %v", st.win)
		}
		if gap == adaptiveProbeMaxGap {
			break
		}
		gap *= 2
		if gap > adaptiveProbeMaxGap {
			gap = adaptiveProbeMaxGap
		}
		if st.probeSkip != gap {
			t.Fatalf("backoff gap = %d, want %d", st.probeSkip, gap)
		}
	}
	if st.probeGap != adaptiveProbeMaxGap {
		t.Fatalf("backoff cap: gap = %d, want %d", st.probeGap, adaptiveProbeMaxGap)
	}

	// A saturated productive round resets the backoff entirely and
	// re-arms a minimal window from zero.
	st.waitHit = true
	st.adaptWindow(cfg.MaxBatch)
	if st.probeGap != 0 {
		t.Fatalf("saturated hit left probeGap = %d", st.probeGap)
	}
	if st.win != adaptiveMinWindow {
		t.Fatalf("saturated hit from zero: win = %v, want %v", st.win, adaptiveMinWindow)
	}

	// Lone-request rounds never probe: a dribbling client has nothing a
	// window could stitch.
	st = &connState{srv: &Server{cfg: cfg}}
	for i := 0; i < 100; i++ {
		st.adaptWindow(1)
	}
	if st.win != 0 {
		t.Fatalf("dribbling rounds armed win = %v", st.win)
	}

	// An explicit BatchWindow caps the adaptive ceiling.
	st = &connState{srv: &Server{cfg: Config{BatchWindowAdaptive: true, MaxBatch: 64, BatchWindow: 20 * time.Microsecond}}}
	st.adaptWindow(32)
	for i := 0; i < 20; i++ {
		st.waitHit = true
		st.adaptWindow(64)
	}
	if st.win != 20*time.Microsecond {
		t.Fatalf("configured ceiling: win = %v, want 20µs", st.win)
	}
}
